"""Seeded equivalence tests: batch engine vs the legacy per-query path.

The batch engine (repro.core.batch) claims seed compatibility with the
per-query PoolingGraphBuilder / IncrementalDecoder code paths. These
tests pin that claim:

* identical *graphs* for the same SeedSequence;
* identical *results* (scores, estimates, evaluation) for the stacked
  trial runner vs the legacy trial loop;
* identical *stopping m* for the chunked incremental simulator — exact
  stream equivalence for channels without per-query noise draws, and
  exact data-level equivalence (replaying the same measurements) for
  every channel.
"""

import numpy as np
import pytest

import repro
from repro.core.batch import (
    BatchTrialRunner,
    first_success_m,
    sample_pooling_graph_batch,
)
from repro.core.incremental import IncrementalDecoder, required_queries
from repro.core.measurement import measure
from repro.core.pooling import sample_pooling_graph
from repro.experiments.runner import required_queries_trials, success_rate_curve
from repro.utils.rng import spawn_rngs


class TestGraphEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2022])
    @pytest.mark.parametrize(
        "n,m,gamma",
        [(100, 40, None), (57, 13, 9), (8, 5, 1), (200, 1, 300)],
    )
    def test_same_graph_as_legacy(self, seed, n, m, gamma):
        g1 = sample_pooling_graph(n, m, gamma, np.random.default_rng(seed))
        g2 = sample_pooling_graph_batch(n, m, gamma, np.random.default_rng(seed))
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.agents, g2.agents)
        assert np.array_equal(g1.counts, g2.counts)
        assert (g1.n, g1.gamma) == (g2.n, g2.gamma)

    def test_same_graph_beyond_uint16_agent_ids(self):
        # n > 2**16 exercises the comparison-sort path.
        g1 = sample_pooling_graph(70_000, 4, 50, np.random.default_rng(7))
        g2 = sample_pooling_graph_batch(70_000, 4, 50, np.random.default_rng(7))
        assert np.array_equal(g1.agents, g2.agents)
        assert np.array_equal(g1.counts, g2.counts)

    def test_empty_graph(self):
        g = sample_pooling_graph_batch(50, 0, rng=0)
        assert g.m == 0
        assert g.total_edges == 0

    def test_without_replacement_delegates(self):
        g1 = sample_pooling_graph(
            60, 10, 20, np.random.default_rng(3), with_replacement=False
        )
        g2 = sample_pooling_graph_batch(
            60, 10, 20, np.random.default_rng(3), with_replacement=False
        )
        assert np.array_equal(g1.agents, g2.agents)
        assert np.all(g2.counts == 1)

    def test_csr_invariants(self):
        g = sample_pooling_graph_batch(37, 25, 50, rng=5)
        assert g.indptr[0] == 0
        assert g.indptr[-1] == g.agents.size == g.counts.size
        assert np.all(np.diff(g.indptr) >= 1)
        assert np.all(g.counts >= 1)
        for agents, _ in g.iter_queries():
            assert np.all(np.diff(agents) > 0)  # sorted, distinct
        assert g.total_edges == 25 * 50


class TestCountingCsr:
    """The dense-regime counting-sort CSR construction."""

    def test_dispatch_rule(self):
        from repro.core.batch import _use_counting_csr

        # counting needs BOTH density (gamma >= n/8) and n beyond the
        # uint16 radix fast path
        assert _use_counting_csr(70_000, 35_000)
        assert _use_counting_csr(100_000, 12_500)
        assert not _use_counting_csr(70_000, 100)  # too sparse
        assert not _use_counting_csr(10_000, 5_000)  # radix still wins
        assert not _use_counting_csr(65_536, 32_768)  # boundary: radix

    @pytest.mark.parametrize("n,m,gamma", [(70_000, 6, 35_000), (66_000, 9, 9_000)])
    def test_identical_to_sort_construction(self, n, m, gamma):
        from repro.core.batch import (
            _csr_from_draws_counting,
            _use_counting_csr,
        )

        assert _use_counting_csr(n, gamma)
        draws = np.random.default_rng(13).integers(0, n, size=(m, gamma))
        flat = np.sort(draws, axis=1).ravel()
        starts = np.empty(flat.size, dtype=bool)
        starts[0] = True
        np.not_equal(flat[1:], flat[:-1], out=starts[1:])
        starts[::gamma] = True
        idx = np.flatnonzero(starts)
        indptr, agents, counts = _csr_from_draws_counting(draws, n)
        assert np.array_equal(agents, flat[idx])
        assert np.array_equal(counts, np.diff(idx, append=flat.size))
        expected_indptr = np.concatenate(
            ([0], np.searchsorted(idx, np.arange(gamma, m * gamma + 1, gamma)))
        )
        assert np.array_equal(indptr, expected_indptr)
        assert counts.sum() == m * gamma

    def test_seed_identical_to_legacy_sampler_dense_regime(self):
        # The counting path must return the same *graph* (not just the
        # same edge multiset) as the legacy per-query sampler.
        n, m = 70_000, 5
        g1 = sample_pooling_graph(n, m, None, np.random.default_rng(41))
        g2 = sample_pooling_graph_batch(n, m, None, np.random.default_rng(41))
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.agents, g2.agents)
        assert np.array_equal(g1.counts, g2.counts)

    def test_many_rows_match_legacy(self):
        n, m = 66_000, 40
        g1 = sample_pooling_graph_batch(n, m, n // 8, np.random.default_rng(5))
        g2 = sample_pooling_graph(n, m, n // 8, np.random.default_rng(5))
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.agents, g2.agents)
        assert np.array_equal(g1.counts, g2.counts)

    def test_sparse_uint32_sort_path_matches_legacy(self):
        # n > 2**16 but too sparse for counting: the uint32-narrowed
        # comparison sort must still return the legacy graph.
        n, m, gamma = 70_000, 30, 500
        g1 = sample_pooling_graph(n, m, gamma, np.random.default_rng(19))
        g2 = sample_pooling_graph_batch(n, m, gamma, np.random.default_rng(19))
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.agents, g2.agents)
        assert np.array_equal(g1.counts, g2.counts)
        assert g2.agents.dtype == np.int64


class TestCountingCsrThreads:
    """The threaded column-parallel scatter of the counting construction."""

    def test_threaded_triple_identical_to_serial(self, monkeypatch):
        from repro.core import batch as batch_mod

        n, m, gamma = 70_000, 16, 35_000
        draws = np.random.default_rng(23).integers(0, n, size=(m, gamma))
        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "1")
        serial = batch_mod._csr_from_draws_counting(draws, n)
        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "3")
        # Drop the work floor so this test-sized call actually threads.
        monkeypatch.setattr(batch_mod, "_CSR_THREAD_MIN_ELEMENTS", 1)
        threaded = batch_mod._csr_from_draws_counting(draws, n)
        for a, b in zip(serial, threaded):
            assert np.array_equal(a, b)

    def test_threaded_sampler_seed_identical(self, monkeypatch):
        from repro.core import batch as batch_mod

        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "4")
        monkeypatch.setattr(batch_mod, "_CSR_THREAD_MIN_ELEMENTS", 1)
        n, m = 70_000, 8
        g1 = sample_pooling_graph_batch(n, m, None, np.random.default_rng(41))
        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "1")
        g2 = sample_pooling_graph(n, m, None, np.random.default_rng(41))
        assert np.array_equal(g1.indptr, g2.indptr)
        assert np.array_equal(g1.agents, g2.agents)
        assert np.array_equal(g1.counts, g2.counts)

    def test_off_switch_and_defaults(self, monkeypatch):
        from repro.core import batch as batch_mod

        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "1")
        assert batch_mod._csr_threads() == 1
        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "6")
        assert batch_mod._csr_threads() == 6
        monkeypatch.delenv(batch_mod.CSR_THREADS_ENV, raising=False)
        assert 1 <= batch_mod._csr_threads() <= 4

    def test_invalid_env_rejected(self, monkeypatch):
        from repro.core import batch as batch_mod

        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_CSR_THREADS"):
            batch_mod._csr_threads()
        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "0")
        with pytest.raises(ValueError, match="REPRO_CSR_THREADS"):
            batch_mod._csr_threads()

    def test_small_calls_stay_serial(self, monkeypatch):
        from repro.core import batch as batch_mod

        calls = []
        monkeypatch.setenv(batch_mod.CSR_THREADS_ENV, "4")
        monkeypatch.setattr(
            batch_mod,
            "chunk_bounds",
            lambda *a: calls.append(a) or [(0, a[0])],
        )
        draws = np.random.default_rng(1).integers(0, 70_000, size=(4, 100))
        batch_mod._csr_from_draws_counting(draws, 70_000)
        assert calls == []  # below the work floor: no fan-out


class TestRunTrialsSeeded:
    def test_chunked_seeds_match_run_trials(self):
        from repro.core.chunking import chunk_sequence
        from repro.utils.rng import spawn_seeds

        runner = BatchTrialRunner(120, 4, repro.ZChannel(0.2))
        whole = runner.run_trials(60, trials=7, seed=3)
        seeds = spawn_seeds(3, 7)
        chunked = [
            r
            for part in chunk_sequence(seeds, 3)
            for r in runner.run_trials_seeded(60, part)
        ]
        assert len(chunked) == len(whole)
        for a, b in zip(whole, chunked):
            assert a.exact == b.exact
            assert a.overlap == b.overlap
            assert np.array_equal(a.scores, b.scores)
            assert np.array_equal(a.estimate, b.estimate)

    def test_empty_seed_list(self):
        runner = BatchTrialRunner(50, 3)
        assert runner.run_trials_seeded(10, []) == []


class TestRunTrialsEquivalence:
    @pytest.mark.parametrize(
        "channel",
        [
            repro.NoiselessChannel(),
            repro.ZChannel(0.2),
            repro.NoisyChannel(0.1, 0.05),
            repro.GaussianQueryNoise(1.5),
        ],
        ids=["noiseless", "z", "noisy", "gaussian"],
    )
    def test_matches_legacy_trial_loop(self, channel):
        n, k, m, trials, seed = 120, 4, 60, 6, 99
        batch = BatchTrialRunner(n, k, channel).run_trials(m, trials, seed=seed)
        for res, gen in zip(batch, spawn_rngs(seed, trials)):
            truth = repro.sample_ground_truth(n, k, gen)
            graph = sample_pooling_graph(n, m, rng=gen)
            meas = measure(graph, truth, channel, gen)
            legacy = repro.greedy_reconstruct(meas)
            assert np.array_equal(res.estimate, legacy.estimate)
            assert np.array_equal(res.scores, legacy.scores)
            assert res.exact == legacy.exact
            assert res.overlap == legacy.overlap
            assert res.separated == legacy.separated
            assert res.hamming_errors == legacy.hamming_errors

    def test_oracle_centering_matches_legacy(self):
        n, k, m, trials, seed = 150, 5, 100, 4, 3
        channel = repro.NoisyChannel(0.05, 0.05)
        runner = BatchTrialRunner(n, k, channel, centering="oracle")
        batch = runner.run_trials(m, trials, seed=seed)
        for res, gen in zip(batch, spawn_rngs(seed, trials)):
            truth = repro.sample_ground_truth(n, k, gen)
            graph = sample_pooling_graph(n, m, rng=gen)
            meas = measure(graph, truth, channel, gen)
            legacy = repro.greedy_reconstruct(meas, centering="oracle")
            assert np.array_equal(res.scores, legacy.scores)

    def test_unsupported_centering_falls_back_to_legacy(self):
        # centering="none" is valid for the legacy greedy decoder but
        # not implemented by the batch runner; the curve must fall back
        # instead of crashing under the default engine.
        curve = success_rate_curve(
            60, 3, repro.ZChannel(0.1), [20], trials=5, seed=2,
            algorithm_kwargs={"centering": "none"},
        )
        assert 0.0 <= curve.success_rates[0] <= 1.0

    def test_success_rate_curve_engines_agree(self):
        kwargs = dict(trials=10, seed=6)
        batch = success_rate_curve(
            100, 3, repro.ZChannel(0.1), [20, 60], engine="batch", **kwargs
        )
        legacy = success_rate_curve(
            100, 3, repro.ZChannel(0.1), [20, 60], engine="legacy", **kwargs
        )
        assert batch.success_rates == legacy.success_rates
        assert batch.overlaps == legacy.overlaps


class TestChunkedRequiredQueries:
    @pytest.mark.parametrize("seed", range(8))
    def test_noiseless_matches_per_query_exactly(self, seed):
        # No per-query noise draws -> the chunked engine consumes the
        # identical RNG stream and must report the identical stopping m.
        seq = lambda: np.random.SeedSequence(seed)  # noqa: E731
        a = required_queries(200, 5, repro.NoiselessChannel(), rng=seq())
        b = required_queries(
            200, 5, repro.NoiselessChannel(), rng=seq(), engine="batch"
        )
        assert a.succeeded and b.succeeded
        assert a.required_m == b.required_m
        assert a.checks == b.checks

    def test_noiseless_check_every_matches_per_query(self):
        for ce in (2, 7, 10):
            a = required_queries(
                200, 5, repro.NoiselessChannel(),
                rng=np.random.SeedSequence(3), check_every=ce,
            )
            b = required_queries(
                200, 5, repro.NoiselessChannel(),
                rng=np.random.SeedSequence(3), check_every=ce, engine="batch",
            )
            assert a.required_m == b.required_m
            assert a.required_m % ce == 0
            assert a.checks == b.checks

    @pytest.mark.parametrize("seed", range(6))
    def test_block_size_invariance(self, seed):
        # The stopping m is a property of the sampled data, not of how
        # the engine chunks it.
        tiny = BatchTrialRunner(120, 4, initial_block=2, block_elements=60 * 4)
        big = BatchTrialRunner(120, 4, initial_block=64)
        a = tiny.required_queries(np.random.SeedSequence(seed))
        b = big.required_queries(np.random.SeedSequence(seed))
        assert a.required_m == b.required_m
        assert a.checks == b.checks

    def test_noisy_channel_deterministic(self):
        runner = BatchTrialRunner(150, 4, repro.ZChannel(0.2))
        a = runner.required_queries(np.random.SeedSequence(9))
        b = runner.required_queries(np.random.SeedSequence(9))
        assert a.required_m == b.required_m

    def test_budget_exhaustion_reports_failure(self):
        runner = BatchTrialRunner(200, 5, repro.ZChannel(0.1))
        res = runner.required_queries(np.random.SeedSequence(3), max_m=2)
        assert not res.succeeded
        assert res.required_m is None
        assert res.meta["max_m"] == 2

    def test_provided_truth_is_used(self, rng):
        truth = repro.sample_ground_truth(100, 4, rng)
        runner = BatchTrialRunner(100, 4)
        res = runner.required_queries(rng, truth=truth)
        assert res.succeeded

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            required_queries(100, 3, rng=0, engine="warp")

    def test_trials_helper_runs_all(self):
        runner = BatchTrialRunner(100, 3, repro.ZChannel(0.1))
        out = runner.required_queries_trials(4, seed=0)
        assert len(out) == 4
        assert all(r.succeeded for r in out)

    def test_runner_trials_engines_agree_noiseless(self):
        a = required_queries_trials(
            150, 4, repro.NoiselessChannel(), trials=5, seed=1, engine="batch"
        )
        b = required_queries_trials(
            150, 4, repro.NoiselessChannel(), trials=5, seed=1, engine="legacy"
        )
        assert a.values == b.values


class TestFirstSuccessM:
    @pytest.mark.parametrize(
        "channel",
        [repro.NoiselessChannel(), repro.ZChannel(0.2), repro.NoisyChannel(0.1, 0.05)],
        ids=["noiseless", "z", "noisy"],
    )
    def test_matches_per_query_decoder(self, channel):
        # Replay the same measured data through both engines: the
        # decode path draws no randomness, so every channel must agree
        # exactly on graphs, scores and stopping m.
        gen = np.random.default_rng(17)
        truth = repro.sample_ground_truth(150, 5, gen)
        graph = sample_pooling_graph(150, 600, rng=gen)
        meas = measure(graph, truth, channel, gen)
        dec = IncrementalDecoder(truth, channel)
        ref = None
        for j in range(graph.m):
            agents, counts = graph.query(j)
            dec.ingest_query(agents, counts, float(meas.results[j]))
            if ref is None and dec.is_successful():
                ref = dec.m
        assert ref is not None
        assert first_success_m(graph, truth, meas.results) == ref

    def test_respects_check_every(self):
        gen = np.random.default_rng(23)
        truth = repro.sample_ground_truth(100, 4, gen)
        graph = sample_pooling_graph(100, 300, rng=gen)
        meas = measure(graph, truth, repro.ZChannel(0.3), gen)
        fine = first_success_m(graph, truth, meas.results, check_every=1)
        coarse = first_success_m(graph, truth, meas.results, check_every=10)
        assert coarse >= fine
        assert coarse % 10 == 0

    def test_never_separating_returns_none(self):
        gen = np.random.default_rng(29)
        truth = repro.sample_ground_truth(100, 4, gen)
        graph = sample_pooling_graph(100, 10, rng=gen)
        # Constant results carry no information: all scores collapse.
        results = np.zeros(graph.m)
        assert first_success_m(graph, truth, results) is None

    def test_oracle_centering_requires_channel(self):
        gen = np.random.default_rng(31)
        truth = repro.sample_ground_truth(50, 3, gen)
        graph = sample_pooling_graph(50, 20, rng=gen)
        with pytest.raises(ValueError):
            first_success_m(graph, truth, np.zeros(20), centering="oracle")


class TestSessionStream:
    """The decode service's append-fed stream (PR 10, satellite 3)."""

    def _stream(self, n=60, gamma=30, seed=0):
        from repro.core.batch import SessionStream

        gen = np.random.default_rng(seed)
        truth = repro.sample_ground_truth(n, 3, gen)
        return SessionStream(n, gamma, truth), gen

    def _queries(self, stream, gen, count):
        sigma = stream.truth.sigma.astype(np.int64)
        channel = repro.ZChannel(0.1)
        out = []
        for _ in range(count):
            agents, counts = repro.sample_query(stream.n, stream.gamma, gen)
            total = int(np.dot(counts, sigma[agents]))
            result = float(
                channel.measure(
                    np.asarray([total]), int(counts.sum()), gen
                )[0]
            )
            out.append((agents, counts, result))
        return out

    def test_append_validation(self):
        stream, _ = self._stream()
        with pytest.raises(ValueError, match="equal length"):
            stream.append([0, 1], [30], 1.0)
        with pytest.raises(ValueError, match="sum to gamma"):
            stream.append([0], [7], 1.0)
        with pytest.raises(ValueError, match=r"lie in \[0"):
            stream.append([60], [30], 1.0)
        with pytest.raises(ValueError, match=">= 1"):
            stream.append([0, 1], [31, -1], 1.0)
        assert stream.m_done == 0

    def test_prefix_matches_per_query_appends(self):
        # Feeding a generator stream's rows through append reproduces
        # its consolidated CSR arrays bit for bit — SessionStream is a
        # faithful wire-fed twin of MeasurementStream.
        from repro.core.batch import MeasurementStream, SessionStream

        n, gamma, m = 50, 25, 30
        gen = np.random.default_rng(5)
        truth = repro.sample_ground_truth(n, 2, gen)
        source = MeasurementStream(
            n, gamma, repro.ZChannel(0.2), truth, gen, max_m=m
        )
        source.grow_to(m)
        twin = SessionStream(n, gamma, truth)
        for i in range(m):
            lo, hi = int(source.indptr[i]), int(source.indptr[i + 1])
            twin.append(
                source.agents[lo:hi],
                source.counts[lo:hi],
                float(source.results[i]),
            )
        assert np.array_equal(twin.indptr, source.indptr[: m + 1])
        assert np.array_equal(twin.agents, source.agents[: int(source.indptr[m])])
        assert np.array_equal(twin.counts, source.counts[: int(source.indptr[m])])
        assert np.array_equal(twin.results, source.results[:m])
        for a, b in zip(twin.prefix(17), source.prefix(17)):
            assert np.array_equal(a, b)

    def test_append_after_replay_is_pure(self):
        # Grown straight through vs checkpointed/replayed/grown-further:
        # identical arrays, identical stacked-AMP decode. This is the
        # service's crash-recovery foundation.
        from repro.amp.batch_amp import decode_prefix_batch
        from repro.core.batch import SessionStream

        straight, gen = self._stream(seed=7)
        queries = self._queries(straight, gen, 40)
        for agents, counts, result in queries:
            straight.append(agents, counts, result)

        # "checkpoint" after 25: replay the recorded arrays into a fresh
        # stream, then keep appending the live tail.
        resumed = SessionStream(
            straight.n, straight.gamma, straight.truth
        )
        for agents, counts, result in queries[:25]:
            resumed.append(agents, counts, result)
        indptr, agents_arr, counts_arr, results_arr = (
            np.array(a) for a in resumed.prefix(25)
        )
        replayed = SessionStream(
            straight.n, straight.gamma, straight.truth
        )
        for i in range(25):
            lo, hi = int(indptr[i]), int(indptr[i + 1])
            replayed.append(
                agents_arr[lo:hi], counts_arr[lo:hi], float(results_arr[i])
            )
        for agents, counts, result in queries[25:]:
            replayed.append(agents, counts, result)

        assert np.array_equal(replayed.indptr, straight.indptr)
        assert np.array_equal(replayed.agents, straight.agents)
        assert np.array_equal(replayed.counts, straight.counts)
        assert np.array_equal(replayed.results, straight.results)

        exact_a, scores_a = decode_prefix_batch(
            [(0, 40)], [straight], straight.n, straight.truth.k,
            repro.ZChannel(0.1), gamma=straight.gamma,
        )
        exact_b, scores_b = decode_prefix_batch(
            [(0, 40)], [replayed], straight.n, straight.truth.k,
            repro.ZChannel(0.1), gamma=straight.gamma,
        )
        assert np.array_equal(exact_a, exact_b)
        assert np.array_equal(scores_a, scores_b)

    def test_grow_to_is_bounded_by_appends(self):
        stream, gen = self._stream()
        for agents, counts, result in self._queries(stream, gen, 6):
            stream.append(agents, counts, result)
        stream.grow_to(6)  # no-op within the appended length
        stream.grow_to(0)
        with pytest.raises(ValueError, match=r"cannot[\s\S]*grow"):
            stream.grow_to(7)
        with pytest.raises(ValueError, match="exceeds the appended"):
            stream.prefix(7)

    def test_consolidation_invalidated_by_append(self):
        stream, gen = self._stream()
        queries = self._queries(stream, gen, 4)
        for agents, counts, result in queries[:2]:
            stream.append(agents, counts, result)
        first = stream.indptr
        assert first.size == 3
        for agents, counts, result in queries[2:]:
            stream.append(agents, counts, result)
        assert stream.indptr.size == 5
        # The earlier consolidated array is untouched (snapshots taken
        # by in-flight decodes stay valid).
        assert first.size == 3
