"""Unit tests for the Theorem 1/2 query thresholds."""

import math

import numpy as np
import pytest

from repro.core.bounds import (
    DEFAULT_EPS,
    GAMMA_CONST,
    counting_lower_bound,
    noisy_query_phase,
    queries_from_density,
    theorem1_bound,
    theorem1_linear,
    theorem1_sublinear_gnc,
    theorem1_sublinear_z,
    theorem2_bound,
    theorem2_linear,
    theorem2_sublinear,
)


class TestGammaConst:
    def test_value(self):
        assert GAMMA_CONST == pytest.approx(1 - math.exp(-0.5))
        assert 0.393 < GAMMA_CONST < 0.394


class TestTheorem1SublinearZ:
    def test_closed_form(self):
        n, theta, p, eps = 10_000, 0.25, 0.1, 0.05
        expected = (
            (4 * GAMMA_CONST + eps)
            * (1 + math.sqrt(theta)) ** 2
            / (1 - p)
            * n**theta
            * math.log(n)
        )
        assert theorem1_sublinear_z(n, theta, p, eps) == pytest.approx(expected)

    def test_noiseless_limit_matches_theorem2(self):
        # p = 0 must recover the Theorem 2 sublinear bound (and [29]).
        n, theta = 5000, 0.3
        assert theorem1_sublinear_z(n, theta, 0.0) == pytest.approx(
            theorem2_sublinear(n, theta)
        )

    def test_monotone_in_p(self):
        values = [theorem1_sublinear_z(1000, 0.25, p) for p in (0.0, 0.1, 0.3, 0.5)]
        assert values == sorted(values)

    def test_monotone_in_theta(self):
        values = [theorem1_sublinear_z(1000, t, 0.1) for t in (0.1, 0.25, 0.5, 0.75)]
        assert values == sorted(values)

    def test_monotone_in_n(self):
        values = [theorem1_sublinear_z(n, 0.25, 0.1) for n in (100, 1000, 10_000)]
        assert values == sorted(values)

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            theorem1_sublinear_z(100, 0.25, 1.0)


class TestTheorem1SublinearGnc:
    def test_closed_form(self):
        n, theta, p, q, eps = 10_000, 0.25, 0.1, 0.01, 0.05
        expected = (
            (4 * GAMMA_CONST + eps)
            * q
            * (1 + math.sqrt(theta)) ** 2
            / (1 - p - q) ** 2
            * n
            * math.log(n)
        )
        assert theorem1_sublinear_gnc(n, theta, p, q, eps) == pytest.approx(expected)

    def test_q_zero_degenerates(self):
        assert theorem1_sublinear_gnc(1000, 0.25, 0.1, 0.0) == 0.0

    def test_monotone_in_q(self):
        values = [
            theorem1_sublinear_gnc(1000, 0.25, 0.1, q) for q in (0.001, 0.01, 0.1)
        ]
        assert values == sorted(values)

    def test_p_plus_q_constraint(self):
        with pytest.raises(ValueError):
            theorem1_sublinear_gnc(1000, 0.25, 0.6, 0.5)


class TestTheorem1Linear:
    def test_closed_form(self):
        n, zeta, p, q, eps = 10_000, 0.2, 0.1, 0.05, 0.05
        expected = (
            (16 * GAMMA_CONST + eps)
            * (q + zeta * (1 - p - q))
            / (1 - p - q) ** 2
            * n
            * math.log(n)
        )
        assert theorem1_linear(n, zeta, p, q, eps) == pytest.approx(expected)

    def test_noiseless_limit_matches_theorem2(self):
        n, zeta = 5000, 0.3
        assert theorem1_linear(n, zeta, 0.0, 0.0) == pytest.approx(
            theorem2_linear(n, zeta)
        )

    def test_monotone_in_noise(self):
        base = theorem1_linear(1000, 0.2, 0.0, 0.0)
        noisy = theorem1_linear(1000, 0.2, 0.2, 0.1)
        assert noisy > base


class TestTheorem1Dispatcher:
    def test_sublinear_z_branch(self):
        assert theorem1_bound(1000, p=0.1, q=0.0, theta=0.25) == pytest.approx(
            theorem1_sublinear_z(1000, 0.25, 0.1)
        )

    def test_sublinear_gnc_takes_max(self):
        # For tiny q the Z-branch dominates (remark after Theorem 1).
        tiny = theorem1_bound(10_000, p=0.1, q=1e-9, theta=0.25)
        assert tiny == pytest.approx(theorem1_sublinear_z(10_000, 0.25, 0.1))
        # For large q the GNC branch dominates.
        big = theorem1_bound(10_000, p=0.1, q=0.1, theta=0.25)
        assert big == pytest.approx(theorem1_sublinear_gnc(10_000, 0.25, 0.1, 0.1))

    def test_linear_branch(self):
        assert theorem1_bound(1000, p=0.1, q=0.05, zeta=0.2) == pytest.approx(
            theorem1_linear(1000, 0.2, 0.1, 0.05)
        )

    def test_requires_exactly_one_regime(self):
        with pytest.raises(ValueError):
            theorem1_bound(1000, p=0.1, q=0.0)
        with pytest.raises(ValueError):
            theorem1_bound(1000, p=0.1, q=0.0, theta=0.25, zeta=0.2)


class TestTheorem2:
    def test_sublinear_closed_form(self):
        n, theta, eps = 1000, 0.25, 0.05
        expected = (
            (4 * GAMMA_CONST + eps)
            * (1 + math.sqrt(theta)) ** 2
            * n**theta
            * math.log(n)
        )
        assert theorem2_sublinear(n, theta, eps) == pytest.approx(expected)

    def test_linear_closed_form(self):
        n, zeta, eps = 1000, 0.3, 0.05
        expected = (16 * GAMMA_CONST + eps) * zeta * n * math.log(n)
        assert theorem2_linear(n, zeta, eps) == pytest.approx(expected)

    def test_dispatcher(self):
        assert theorem2_bound(1000, theta=0.25) == theorem2_sublinear(1000, 0.25)
        assert theorem2_bound(1000, zeta=0.25) == theorem2_linear(1000, 0.25)
        with pytest.raises(ValueError):
            theorem2_bound(1000)


class TestNoisyQueryPhase:
    def test_recoverable_small_lambda(self):
        assert noisy_query_phase(1.0, m=1000, n=1000) == "recoverable"

    def test_failure_large_lambda(self):
        assert noisy_query_phase(100.0, m=1000, n=1000) == "failure"

    def test_intermediate(self):
        # m/ln(n) < lam^2 < m
        m, n = 1000, 10**9
        lam = math.sqrt(m / math.log(n) * 2)
        assert noisy_query_phase(lam, m=m, n=n) == "intermediate"

    def test_zero_lambda_recoverable(self):
        assert noisy_query_phase(0.0, m=10, n=100) == "recoverable"


class TestCountingLowerBound:
    def test_degenerate_zero(self):
        assert counting_lower_bound(100, 0) == 0.0
        assert counting_lower_bound(100, 100) == 0.0

    def test_small_exact_value(self):
        # m >= log2 C(10, 2) / log2(6) = log2(45)/log2(6)
        expected = math.log2(45) / math.log2(6)
        assert counting_lower_bound(10, 2, gamma=5) == pytest.approx(expected)

    def test_below_theorem1(self):
        # The greedy upper bound must dominate the counting lower bound.
        for n in (1000, 10_000):
            theta = 0.25
            k = round(n**theta)
            lower = counting_lower_bound(n, k)
            upper = theorem1_sublinear_z(n, theta, 0.0)
            assert lower < upper

    def test_monotone_in_k_up_to_half(self):
        values = [counting_lower_bound(1000, k) for k in (1, 5, 50, 500)]
        assert values == sorted(values)

    def test_default_gamma_is_half_n(self):
        assert counting_lower_bound(100, 5) == pytest.approx(
            counting_lower_bound(100, 5, gamma=50)
        )

    def test_k_exceeding_n_rejected(self):
        with pytest.raises(ValueError):
            counting_lower_bound(10, 11)


class TestQueriesFromDensity:
    def test_formula(self):
        assert queries_from_density(2.0, 10, 1000) == pytest.approx(
            20 * math.log(1000)
        )


class TestCrossChecks:
    def test_eps_increases_bound(self):
        lo = theorem1_sublinear_z(1000, 0.25, 0.1, eps=0.0)
        hi = theorem1_sublinear_z(1000, 0.25, 0.1, eps=1.0)
        assert hi > lo

    def test_default_eps_is_paper_value(self):
        assert DEFAULT_EPS == 0.05

    def test_bounds_are_finite_positive(self):
        for f, args in [
            (theorem1_sublinear_z, (1000, 0.25, 0.3)),
            (theorem1_sublinear_gnc, (1000, 0.25, 0.3, 0.1)),
            (theorem1_linear, (1000, 0.2, 0.3, 0.1)),
            (theorem2_sublinear, (1000, 0.25)),
            (theorem2_linear, (1000, 0.2)),
        ]:
            value = f(*args)
            assert np.isfinite(value) and value > 0
