"""Checkpoint/resume contract: crash-safe, stale-proof, bit-identical.

The invariants under test: (1) a checkpointed run produces the exact
result an uncheckpointed serial run does; (2) a driver killed mid-sweep
and re-run with the same plan resumes from persisted chunks/cells —
skipping completed work — and still matches the uninterrupted
reference bit for bit; (3) a checkpoint written for a *different* plan
(changed specs or seeds) is rejected via the fingerprint, never
silently resumed; (4) the storage primitive is atomic (a torn write is
impossible by construction of write-then-rename).
"""

import json

import pytest

import repro
from repro.experiments import parallel
from repro.experiments.checkpoint import (
    CHECKPOINT_ENV,
    CheckpointMismatch,
    SweepCheckpoint,
    chunk_key,
    plan_fingerprint,
)
from repro.experiments.scheduler import SweepExecutor, SweepPlan, _run_chunk
from repro.experiments.storage import load_json, save_json_atomic


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    parallel.shutdown_pool()


def make_plan(seed=7):
    plan = SweepPlan()
    plan.add_required_queries(
        120, 3, repro.ZChannel(0.1), trials=6, seed=seed, check_every=4
    )
    plan.add_success_curve(
        120, 3, repro.ZChannel(0.1), [60, 120], trials=4, seed=seed + 1
    )
    return plan


class TestStorageAtomic:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "nested" / "record.json"
        save_json_atomic(path, {"outcomes": [[True, 17], [False, None]]})
        assert load_json(path) == {"outcomes": [[True, 17], [False, None]]}

    def test_no_temp_residue(self, tmp_path):
        path = tmp_path / "record.json"
        save_json_atomic(path, {"a": 1})
        save_json_atomic(path, {"a": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["record.json"]
        assert load_json(path) == {"a": 2}

    def test_failure_leaves_previous_file(self, tmp_path):
        path = tmp_path / "record.json"
        save_json_atomic(path, {"a": 1})
        with pytest.raises(TypeError):
            save_json_atomic(path, {"bad": object()})
        # The failed write neither replaced the file nor left a temp.
        assert load_json(path) == {"a": 1}
        assert [p.name for p in tmp_path.iterdir()] == ["record.json"]


class TestFingerprint:
    def test_stable_across_constructions(self):
        assert plan_fingerprint(make_plan()) == plan_fingerprint(make_plan())

    def test_sensitive_to_seed_and_spec(self):
        base = plan_fingerprint(make_plan(seed=7))
        assert plan_fingerprint(make_plan(seed=8)) != base
        other = SweepPlan()
        other.add_required_queries(
            121, 3, repro.ZChannel(0.1), trials=6, seed=7, check_every=4
        )
        other.add_success_curve(
            120, 3, repro.ZChannel(0.1), [60, 120], trials=4, seed=8
        )
        assert plan_fingerprint(other) != base

    def test_chunk_key_layout_independent(self):
        assert chunk_key(3, None, 0, 8) == "c3_mr_0_8"
        assert chunk_key(3, 2, 0, 8) == "c3_m2_0_8"
        # No prefix collision between cells 1 and 12: the separator is
        # part of the key, so cell-record cleanup cannot eat a sibling.
        assert not chunk_key(12, None, 0, 8).startswith("c1_")


class TestCheckpointRoundTrip:
    def test_checkpointed_run_matches_plain_serial(self, tmp_path):
        ref = make_plan().run(backend="serial")
        got = make_plan().run(backend="serial", checkpoint=tmp_path)
        assert repr(got) == repr(ref)

    def test_resume_skips_completed_cells(self, tmp_path):
        ref = make_plan().run(backend="serial")
        make_plan().run(backend="serial", checkpoint=tmp_path)
        plan = make_plan()
        ckpt = SweepCheckpoint.open(tmp_path, plan)
        assert sorted(ckpt._cells) == [0, 1]
        got = plan.run(backend="serial", checkpoint=tmp_path)
        assert repr(got) == repr(ref)

    def test_resume_after_simulated_kill(self, tmp_path, monkeypatch):
        """Die after the first chunk lands; the resume must complete
        from the surviving records and match the uninterrupted run."""
        ref = make_plan().run(backend="serial")

        calls = {"n": 0}
        real = _run_chunk

        def dying(spec, kind, m, seeds):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt  # the "kill" mid-sweep
            return real(spec, kind, m, seeds)

        import repro.experiments.scheduler as sched

        monkeypatch.setattr(sched, "_run_chunk", dying)
        with pytest.raises(KeyboardInterrupt):
            make_plan().run(backend="serial", checkpoint=tmp_path)
        monkeypatch.setattr(sched, "_run_chunk", real)

        # Something durable survived the crash...
        plan = make_plan()
        ckpt = SweepCheckpoint.open(tmp_path, plan)
        assert ckpt._cells or ckpt._chunks
        # ...and the resumed run is bit-identical and reuses it.
        got = plan.run(backend="serial", checkpoint=tmp_path)
        assert repr(got) == repr(ref)

    def test_resume_with_different_chunk_layout(self, tmp_path):
        """Chunk records key on trial ranges, so a resume exploded
        into a different layout recomputes only the unmatched ranges
        and still merges bit-identically."""
        ref = make_plan().run(backend="serial")
        # Serial explodes 1 chunk per (cell, grid point)...
        make_plan().run(backend="serial", checkpoint=tmp_path)
        # ...while workers=2 explodes many; the completed-cell records
        # still satisfy the whole plan without recomputation.
        plan = make_plan()
        got = SweepExecutor(
            backend="serial", workers=2, checkpoint=tmp_path
        ).run(plan)
        ckpt = SweepCheckpoint.open(tmp_path, make_plan())
        assert repr(got) == repr(ref)

    def test_env_var_enables_checkpointing(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CHECKPOINT_ENV, str(tmp_path))
        ref = make_plan().run(backend="serial")
        assert any(tmp_path.glob("plan-*/manifest.json"))
        got = make_plan().run(backend="serial")
        assert repr(got) == repr(ref)

    def test_process_backend_reuses_serial_checkpoint(self, tmp_path):
        ref = make_plan().run(backend="serial", checkpoint=tmp_path)
        plan = make_plan()
        ckpt = SweepCheckpoint.open(tmp_path, plan)
        got = plan.run(backend="process", workers=2, checkpoint=tmp_path)
        assert repr(got) == repr(ref)
        # Everything was restored: the pool never even started.
        reopened = SweepCheckpoint.open(tmp_path, make_plan())
        assert sorted(reopened._cells) == [0, 1]


class TestStaleRejection:
    def test_plan_dir_fingerprint_mismatch(self, tmp_path):
        make_plan(seed=7).run(backend="serial", checkpoint=tmp_path)
        plan_dir = next(tmp_path.glob("plan-*"))
        other = make_plan(seed=8)
        with pytest.raises(CheckpointMismatch, match="stale checkpoint"):
            SweepCheckpoint.open(plan_dir, other)
        with pytest.raises(CheckpointMismatch, match="stale checkpoint"):
            other.run(backend="serial", checkpoint=plan_dir)

    def test_root_dir_isolates_plans(self, tmp_path):
        """Under a shared root, different plans get different subdirs
        instead of tripping over each other's manifests."""
        make_plan(seed=7).run(backend="serial", checkpoint=tmp_path)
        make_plan(seed=8).run(backend="serial", checkpoint=tmp_path)
        assert len(list(tmp_path.glob("plan-*"))) == 2

    def test_version_mismatch_rejected(self, tmp_path):
        make_plan().run(backend="serial", checkpoint=tmp_path)
        manifest = next(tmp_path.glob("plan-*/manifest.json"))
        record = json.loads(manifest.read_text())
        record["version"] = 999
        manifest.write_text(json.dumps(record))
        with pytest.raises(CheckpointMismatch, match="version"):
            SweepCheckpoint.open(manifest.parent, make_plan())
