"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_accepts_options(self):
        args = build_parser().parse_args(
            ["fig2", "--trials", "3", "--n-max", "500", "--seed", "7"]
        )
        assert args.figure == "fig2"
        assert args.trials == 3
        assert args.n_max == 500
        assert args.seed == 7

    def test_workers_flag(self):
        assert build_parser().parse_args(["fig2"]).workers is None
        args = build_parser().parse_args(["fig2", "--workers", "4"])
        assert args.workers == 4

    def test_backend_flag(self):
        # every sweep subcommand exposes --backend with the engine's
        # shared backend constants
        from repro.experiments.scheduler import BACKENDS

        for command in ("fig2", "fig6", "required-queries", "threshold"):
            assert build_parser().parse_args([command]).backend is None
            for backend in BACKENDS:
                args = build_parser().parse_args(
                    [command, "--backend", backend]
                )
                assert args.backend == backend
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--backend", "quantum"])

    def test_worker_serve_subcommand(self):
        from repro.experiments.worker import DEFAULT_PORT

        args = build_parser().parse_args(["worker", "serve"])
        assert args.command == "worker"
        assert args.worker_command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port is None  # resolved to DEFAULT_PORT at serve time
        args = build_parser().parse_args(
            ["worker", "serve", "--host", "0.0.0.0", "--port", "7001"]
        )
        assert (args.host, args.port) == ("0.0.0.0", 7001)
        assert DEFAULT_PORT == 7920
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])

    def test_ablation_design_subcommand(self):
        args = build_parser().parse_args(["ablation_design", "--trials", "4"])
        assert args.figure == "ablation_design"
        assert args.trials == 4
        args = build_parser().parse_args(
            ["ablation_design", "--n-values", "200", "400", "--m-points", "6"]
        )
        assert args.n_values == [200, 400]
        assert args.m_points == 6
        # the shared fig2-7 grid flags do not apply and are rejected
        # rather than silently ignored
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation_design", "--n-max", "5000"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ablation_design", "--full-scale"])

    def test_all_runs_paper_figures_only(self, monkeypatch):
        # `repro all` regenerates fig2-fig7; the design ablation runs
        # only by name (it has its own grid and ignores the n flags).
        import repro.cli as cli

        ran = []

        def fake_run_figure(name, **kwargs):
            ran.append(name)
            from repro.experiments.figures import FigureResult

            return FigureResult(figure=name, description="", params={})

        monkeypatch.setattr(cli, "run_figure", fake_run_figure)
        assert main(["all", "--trials", "1"]) == 0
        assert ran == ["fig2", "fig3", "fig4", "fig5", "fig6", "fig7"]

    def test_figure_algorithms_flag(self):
        args = build_parser().parse_args(["fig2", "--algorithms", "greedy", "amp"])
        assert args.algorithms == ["greedy", "amp"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig2", "--algorithms", "distributed"])

    def test_robustness_degradation_subcommand(self):
        args = build_parser().parse_args(
            [
                "robustness_degradation", "--fault-kind", "flip",
                "--fault-rate", "0.0", "0.01", "--algorithms", "greedy",
                "twostage", "--n", "200", "--m", "120",
            ]
        )
        assert args.figure == "robustness_degradation"
        assert args.fault_kind == "flip"
        assert args.fault_rate == [0.0, 0.01]
        assert args.algorithms == ["greedy", "twostage"]
        assert args.n == 200 and args.m == 120
        # the fig2-7 grid flags do not apply and are rejected
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["robustness_degradation", "--n-max", "5000"]
            )

    def test_robustness_loss_subcommand(self):
        args = build_parser().parse_args(
            [
                "robustness_loss", "--drop", "0.0", "0.5", "--delay", "0.1",
                "--max-delay", "2",
            ]
        )
        assert args.figure == "robustness_loss"
        assert args.drop == [0.0, 0.5]
        assert args.delay == 0.1
        assert args.max_delay == 2

    def test_robustness_comm_subcommand(self):
        args = build_parser().parse_args(
            ["robustness_comm", "--n-values", "64", "128", "--m-fraction",
             "0.5"]
        )
        assert args.figure == "robustness_comm"
        assert args.n_values == [64, 128]
        assert args.m_fraction == 0.5

    @pytest.mark.parametrize("bad", ["-0.1", "1.5", "nan", "two"])
    def test_fault_rates_are_validated_probabilities(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["robustness_loss", "--drop", bad])
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["robustness_degradation", "--fault-rate", bad]
            )

    def test_robustness_kind_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["robustness_degradation", "--fault-kind", "gamma-ray"]
            )

    def test_required_queries_defaults(self):
        args = build_parser().parse_args(["required-queries"])
        assert args.command == "required-queries"
        assert args.algorithm == "greedy"
        assert args.check_every == 1
        assert args.max_m is None
        assert args.workers is None

    def test_required_queries_amp_options(self):
        args = build_parser().parse_args(
            ["required-queries", "--algorithm", "amp", "--check-every", "8",
             "--max-m", "500", "--workers", "2", "--channel", "gaussian",
             "--lam", "2.0"]
        )
        assert args.algorithm == "amp"
        assert args.check_every == 8
        assert args.max_m == 500
        assert args.workers == 2
        assert args.channel == "gaussian"

    def test_algorithm_choices_come_from_shared_constants(self):
        # required-queries accepts exactly the required-m-capable
        # algorithms; threshold accepts the full harness list.
        from repro.experiments.runner import (
            ALGORITHMS,
            REQUIRED_QUERIES_ALGORITHMS,
        )

        for algorithm in REQUIRED_QUERIES_ALGORITHMS:
            args = build_parser().parse_args(
                ["required-queries", "--algorithm", algorithm]
            )
            assert args.algorithm == algorithm
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["required-queries", "--algorithm", "distributed"]
            )
        for algorithm in ALGORITHMS:
            args = build_parser().parse_args(
                ["threshold", "--algorithm", algorithm]
            )
            assert args.algorithm == algorithm


class TestMain:
    def test_fig2_tiny(self, capsys):
        rc = main(["fig2", "--trials", "1", "--n-min", "60", "--n-max", "120",
                   "--n-points", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "p=0.1" in out

    def test_fig7_tiny_with_save(self, tmp_path, capsys):
        rc = main(["fig7", "--trials", "2", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig7.json").exists()
        assert (tmp_path / "fig7.csv").exists()

    def test_robustness_degradation_end_to_end(self, tmp_path, capsys):
        rc = main(
            [
                "robustness_degradation", "--trials", "3", "--n", "150",
                "--fault-rate", "0.0", "0.6", "--out", str(tmp_path),
                "--plot",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "robustness_degradation" in out
        assert "twostage" in out
        assert "fault_rate" in out
        assert (tmp_path / "robustness_degradation.json").exists()
        assert (tmp_path / "robustness_degradation.csv").exists()

    def test_robustness_loss_tiny(self, capsys):
        rc = main(
            ["robustness_loss", "--trials", "2", "--n", "48", "--m", "90",
             "--drop", "0.0", "0.4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "lossy-broadcast" in out
        assert "mean_dropped" in out

    def test_required_queries_amp_tiny(self, tmp_path, capsys):
        rc = main(
            ["required-queries", "--algorithm", "amp", "--n", "120", "--k",
             "3", "--channel", "noiseless", "--trials", "2", "--check-every",
             "4", "--max-m", "300", "--out", str(tmp_path)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "amp" in out
        assert "required_m_median" in out
        saved = tmp_path / "required_queries_amp.json"
        assert saved.exists()
        from repro.experiments.storage import load_required_queries_sample

        assert load_required_queries_sample(saved).algorithm == "amp"

    def test_required_queries_engines_agree(self, capsys):
        common = ["required-queries", "--algorithm", "amp", "--n", "100",
                  "--k", "3", "--channel", "z", "--p", "0.1", "--trials",
                  "2", "--check-every", "4", "--max-m", "200"]
        assert main(common + ["--engine", "batch"]) == 0
        out_batch = capsys.readouterr().out
        assert main(common + ["--engine", "legacy"]) == 0
        out_legacy = capsys.readouterr().out
        # identical stopping m's, identical report
        assert out_batch.split("completed")[0] == out_legacy.split("completed")[0]

    def test_threshold_tiny(self, capsys):
        rc = main(["threshold", "--n", "100", "--k", "3", "--channel",
                   "noiseless", "--trials", "4", "--m-init", "8"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "threshold_m" in out

    def test_fig2_tiny_sharded_matches_serial(self, tmp_path, capsys):
        common = ["fig2", "--trials", "2", "--n-min", "60", "--n-max", "120",
                  "--n-points", "2"]
        rc = main(common + ["--out", str(tmp_path / "serial")])
        out_serial = capsys.readouterr().out
        assert rc == 0
        rc = main(common + ["--workers", "2", "--out", str(tmp_path / "sharded")])
        out_sharded = capsys.readouterr().out
        assert rc == 0
        serial = (tmp_path / "serial" / "fig2.csv").read_text()
        sharded = (tmp_path / "sharded" / "fig2.csv").read_text()
        assert serial == sharded


class TestRobustnessFlags:
    def test_checkpoint_and_auth_token_parse(self):
        for command in ("fig2", "required-queries"):
            args = build_parser().parse_args([command])
            assert args.checkpoint is None
            assert args.auth_token is None
            args = build_parser().parse_args(
                [command, "--checkpoint", "/tmp/ckpt", "--auth-token", "s3"]
            )
            assert args.checkpoint == "/tmp/ckpt"
            assert args.auth_token == "s3"
        args = build_parser().parse_args(
            ["worker", "serve", "--auth-token", "s3"]
        )
        assert args.auth_token == "s3"

    def test_checkpoint_flag_writes_and_resumes(self, tmp_path, capsys,
                                                monkeypatch):
        from repro.experiments.checkpoint import CHECKPOINT_ENV

        # setenv-then-delenv (not bare delenv) so monkeypatch records
        # an undo even when the var starts absent: main() exports the
        # flag into os.environ, which must not leak past this test.
        monkeypatch.setenv(CHECKPOINT_ENV, "sentinel")
        monkeypatch.delenv(CHECKPOINT_ENV)
        common = ["fig2", "--trials", "1", "--n-min", "60", "--n-max",
                  "120", "--n-points", "2"]
        ckpt = tmp_path / "ckpt"
        assert main(common + ["--checkpoint", str(ckpt)]) == 0
        out_first = capsys.readouterr().out
        assert any(ckpt.glob("plan-*/manifest.json"))
        # Second run restores every cell from the checkpoint and
        # reports identically.
        assert main(common + ["--checkpoint", str(ckpt)]) == 0
        out_resumed = capsys.readouterr().out
        assert (out_first.split("completed")[0]
                == out_resumed.split("completed")[0])

    def test_auth_token_flag_exports_env(self, monkeypatch, capsys):
        import os

        from repro.experiments.worker import AUTH_TOKEN_ENV

        # As above: register an undo before main() exports the token.
        monkeypatch.setenv(AUTH_TOKEN_ENV, "sentinel")
        monkeypatch.delenv(AUTH_TOKEN_ENV)
        assert main(["fig2", "--trials", "1", "--n-min", "60", "--n-max",
                     "60", "--n-points", "1", "--auth-token", "hunter2"]) == 0
        assert os.environ.get(AUTH_TOKEN_ENV) == "hunter2"

    def test_worker_serve_bind_failure_exits_nonzero(self, capsys):
        import socket

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen()
        port = blocker.getsockname()[1]
        try:
            rc = main(["worker", "serve", "--port", str(port)])
        finally:
            blocker.close()
        assert rc == 1
        err = capsys.readouterr().err
        assert "[worker] error:" in err

    def test_worker_serve_banner_reports_auth_mode(self, capsys):
        # Banner text is produced by _run_worker's ready callback; the
        # auth wording is decided before serving, so bind failure after
        # a deliberate conflict still exercises both branches cheaply.
        import socket

        from repro.experiments.worker import AUTH_TOKEN_ENV

        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen()
        port = blocker.getsockname()[1]
        try:
            main(["worker", "serve", "--port", str(port)])
            err_plain = capsys.readouterr().err
            main(["worker", "serve", "--port", str(port), "--auth-token",
                  "s3"])
            err_auth = capsys.readouterr().err
        finally:
            blocker.close()
        assert AUTH_TOKEN_ENV not in err_auth
        assert "error" in err_plain
