"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_accepts_options(self):
        args = build_parser().parse_args(
            ["fig2", "--trials", "3", "--n-max", "500", "--seed", "7"]
        )
        assert args.figure == "fig2"
        assert args.trials == 3
        assert args.n_max == 500
        assert args.seed == 7

    def test_workers_flag(self):
        assert build_parser().parse_args(["fig2"]).workers is None
        args = build_parser().parse_args(["fig2", "--workers", "4"])
        assert args.workers == 4


class TestMain:
    def test_fig2_tiny(self, capsys):
        rc = main(["fig2", "--trials", "1", "--n-min", "60", "--n-max", "120",
                   "--n-points", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "p=0.1" in out

    def test_fig7_tiny_with_save(self, tmp_path, capsys):
        rc = main(["fig7", "--trials", "2", "--out", str(tmp_path)])
        assert rc == 0
        assert (tmp_path / "fig7.json").exists()
        assert (tmp_path / "fig7.csv").exists()

    def test_fig2_tiny_sharded_matches_serial(self, tmp_path, capsys):
        common = ["fig2", "--trials", "2", "--n-min", "60", "--n-max", "120",
                  "--n-points", "2"]
        rc = main(common + ["--out", str(tmp_path / "serial")])
        out_serial = capsys.readouterr().out
        assert rc == 0
        rc = main(common + ["--workers", "2", "--out", str(tmp_path / "sharded")])
        out_sharded = capsys.readouterr().out
        assert rc == 0
        serial = (tmp_path / "serial" / "fig2.csv").read_text()
        sharded = (tmp_path / "sharded" / "fig2.csv").read_text()
        assert serial == sharded
