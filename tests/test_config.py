"""Tests for the consolidated ``REPRO_*`` env parsing helpers.

Every runtime knob goes through :mod:`repro.utils.config`, so these
tests pin two things: the parsing semantics of each helper, and the
single shared error format (variable name first, expected shape,
quoted raw value) that call sites across the library inherit.
"""

import pytest

from repro.utils import config
from repro.utils.config import (
    ConfigError,
    env_flag,
    env_float,
    env_int,
    env_raw,
    env_str,
)

NAME = "REPRO_TEST_KNOB"


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(NAME, raising=False)


# -- env_raw -------------------------------------------------------------


def test_raw_unset_and_blank_are_none(monkeypatch):
    assert env_raw(NAME) is None
    monkeypatch.setenv(NAME, "   ")
    assert env_raw(NAME) is None


def test_raw_strips(monkeypatch):
    monkeypatch.setenv(NAME, "  value ")
    assert env_raw(NAME) == "value"


# -- env_int -------------------------------------------------------------


def test_int_parses(monkeypatch):
    monkeypatch.setenv(NAME, " 7 ")
    assert env_int(NAME) == 7


def test_int_unset_is_none():
    assert env_int(NAME) is None


def test_int_garbage_raises(monkeypatch):
    monkeypatch.setenv(NAME, "many")
    with pytest.raises(ConfigError, match=r"REPRO_TEST_KNOB must be an integer, got 'many'"):
        env_int(NAME)


def test_int_minimum(monkeypatch):
    monkeypatch.setenv(NAME, "0")
    with pytest.raises(ConfigError, match=r"an integer >= 1, got '0'"):
        env_int(NAME, minimum=1)
    assert env_int(NAME, minimum=0) == 0


def test_int_rejects_float_spelling(monkeypatch):
    monkeypatch.setenv(NAME, "2.5")
    with pytest.raises(ConfigError):
        env_int(NAME)


# -- env_float -----------------------------------------------------------


def test_float_parses(monkeypatch):
    monkeypatch.setenv(NAME, "3.5")
    assert env_float(NAME) == 3.5


def test_float_garbage_raises(monkeypatch):
    monkeypatch.setenv(NAME, "soon")
    with pytest.raises(ConfigError, match=r"REPRO_TEST_KNOB must be a number, got 'soon'"):
        env_float(NAME)


def test_float_rejects_nan(monkeypatch):
    monkeypatch.setenv(NAME, "nan")
    with pytest.raises(ConfigError):
        env_float(NAME)


def test_float_minimum_and_positive(monkeypatch):
    monkeypatch.setenv(NAME, "0")
    assert env_float(NAME, minimum=0.0) == 0.0
    with pytest.raises(ConfigError, match=r"a number > 0, got '0'"):
        env_float(NAME, positive=True)
    monkeypatch.setenv(NAME, "-1")
    with pytest.raises(ConfigError, match=r"a number >= 0, got '-1'"):
        env_float(NAME, minimum=0.0)


# -- env_flag ------------------------------------------------------------


@pytest.mark.parametrize("raw", ["1", "true", "YES", " On "])
def test_flag_truthy(monkeypatch, raw):
    monkeypatch.setenv(NAME, raw)
    assert env_flag(NAME) is True


@pytest.mark.parametrize("raw", ["0", "false", "NO", "off"])
def test_flag_falsy(monkeypatch, raw):
    monkeypatch.setenv(NAME, raw)
    assert env_flag(NAME) is False


def test_flag_unset_is_false():
    assert env_flag(NAME) is False


def test_flag_garbage_raises(monkeypatch):
    monkeypatch.setenv(NAME, "2")
    with pytest.raises(ConfigError, match="REPRO_TEST_KNOB"):
        env_flag(NAME)


# -- env_str -------------------------------------------------------------


def test_str_choices(monkeypatch):
    monkeypatch.setenv(NAME, "fast")
    assert env_str(NAME, choices=("fast", "slow")) == "fast"
    with pytest.raises(ConfigError, match="REPRO_TEST_KNOB"):
        env_str(NAME, choices=("a", "b"))


def test_config_error_is_value_error():
    # Call sites across the library catch ValueError; the consolidated
    # helper must stay compatible with them.
    assert issubclass(ConfigError, ValueError)


# -- call sites share the format ----------------------------------------


def test_workers_env_uses_config(monkeypatch):
    from repro.experiments.parallel import WORKERS_ENV, resolve_workers

    monkeypatch.setenv(WORKERS_ENV, "many")
    with pytest.raises(ValueError, match=r"REPRO_WORKERS must be an integer >= 0"):
        resolve_workers()


def test_frame_cap_env_uses_config(monkeypatch):
    from repro.experiments.worker import MAX_FRAME_ENV, max_frame_bytes

    monkeypatch.setenv(MAX_FRAME_ENV, "huge")
    with pytest.raises(ValueError, match=r"REPRO_MAX_FRAME_BYTES must be an integer >= 1"):
        max_frame_bytes()


def test_connect_retry_env_uses_config(monkeypatch):
    from repro.experiments.worker import CONNECT_RETRY_ENV, resolve_connect_retry

    monkeypatch.setenv(CONNECT_RETRY_ENV, "forever")
    with pytest.raises(ValueError, match=r"REPRO_CONNECT_RETRY must be a number >= 0"):
        resolve_connect_retry(None)


def test_csr_threads_env_uses_config(monkeypatch):
    from repro.core.batch import CSR_THREADS_ENV, _csr_threads

    monkeypatch.setenv(CSR_THREADS_ENV, "0")
    with pytest.raises(ValueError, match=r"REPRO_CSR_THREADS must be an integer >= 1"):
        _csr_threads()
