"""Property tests for the measurement-corruption model (PR 8).

Invariants of :mod:`repro.core.corruption`: the null model is a
bit-identical no-op, dropped queries never invent edges (the corrupted
graph is a row-subset of the original), flip counts concentrate at the
nominal rate, realizations are pure functions of ``(model, seed)``
(the backend/chunk-layout half of this contract lives in
``tests/test_fault_sweeps.py``), and the dedicated fault streams are
derived without mutating the trial seed.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.corruption import (
    CORRUPTION_STREAM_KEY,
    NETWORK_STREAM_KEY,
    CorruptionModel,
    FaultSpec,
    apply_corruption,
    corruption_rng,
    fault_stream,
    network_fault_rng,
)


def _measurements(n=80, k=4, m=120, seed=0, channel=None):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    return repro.measure(graph, truth, channel or repro.ZChannel(0.1), gen)


# -- null model / no-op guarantee ---------------------------------------


def test_null_model_returns_the_same_object():
    meas = _measurements()
    report = apply_corruption(meas, CorruptionModel(), corruption_rng(1))
    assert report.measurements is meas
    assert report.kept.all()
    assert report.results_full is meas.results
    assert report.dropped_queries == 0


def test_none_model_is_also_a_noop():
    meas = _measurements()
    assert apply_corruption(meas, None, corruption_rng(1)).measurements is meas


def test_null_model_consumes_no_draws():
    # A null model must not advance the generator — a sweep cell with
    # corruption=None and one with the null model are the same cell.
    rng = corruption_rng(7)
    apply_corruption(_measurements(), CorruptionModel(), rng)
    fresh = corruption_rng(7)
    assert rng.random() == fresh.random()


def test_zero_rate_stages_consume_no_draws():
    # Only active stages draw: a flip-only model's realization must not
    # depend on whether the erasure/outlier/dead stages exist at all.
    meas = _measurements()
    a = apply_corruption(meas, CorruptionModel(flip_rate=0.3), corruption_rng(5))
    rng = corruption_rng(5)
    flip_mask = rng.random(meas.graph.m) < 0.3
    assert a.flipped == int(flip_mask.sum())


# -- determinism --------------------------------------------------------


@pytest.mark.parametrize(
    "model",
    [
        CorruptionModel(flip_rate=0.2),
        CorruptionModel(erasure_rate=0.3),
        CorruptionModel(outlier_rate=0.2, outlier_scale=3.0),
        CorruptionModel(dead_agent_rate=0.1),
        CorruptionModel(
            flip_rate=0.1, erasure_rate=0.1, outlier_rate=0.1,
            dead_agent_rate=0.05,
        ),
    ],
    ids=["flip", "erasure", "outlier", "dead", "all"],
)
def test_realization_is_a_pure_function_of_the_seed(model):
    meas = _measurements()
    seq = np.random.SeedSequence(99, spawn_key=(3,))
    a = apply_corruption(meas, model, corruption_rng(seq))
    b = apply_corruption(meas, model, corruption_rng(seq))
    assert np.array_equal(a.kept, b.kept)
    assert np.array_equal(a.results_full, b.results_full)
    assert np.array_equal(a.measurements.results, b.measurements.results)
    assert np.array_equal(
        a.measurements.graph.indptr, b.measurements.graph.indptr
    )
    assert np.array_equal(
        a.measurements.graph.agents, b.measurements.graph.agents
    )


def test_fault_stream_does_not_mutate_the_trial_seed():
    seq = np.random.SeedSequence(42)
    before = seq.spawn_key
    n_children = seq.n_children_spawned
    fault_stream(seq, CORRUPTION_STREAM_KEY)
    corruption_rng(seq)
    network_fault_rng(seq)
    assert seq.spawn_key == before
    assert seq.n_children_spawned == n_children
    # Deriving the stream leaves the trial generator's draws unchanged.
    assert (
        np.random.default_rng(seq).random()
        == np.random.default_rng(np.random.SeedSequence(42)).random()
    )


def test_corruption_and_network_streams_are_distinct():
    seq = np.random.SeedSequence(11, spawn_key=(2,))
    assert corruption_rng(seq).random() != network_fault_rng(seq).random()
    assert CORRUPTION_STREAM_KEY != NETWORK_STREAM_KEY


def test_fault_stream_never_collides_with_spawned_children():
    # spawn() hands out ascending small integers as spawn-key suffixes;
    # the stream tags are large constants, so a trial's corruption
    # stream can never equal one of its spawned children.
    seq = np.random.SeedSequence(5)
    children = seq.spawn(10)
    stream = fault_stream(seq, CORRUPTION_STREAM_KEY)
    assert all(child.spawn_key != stream.spawn_key for child in children)


# -- structural invariants ----------------------------------------------


def _row(graph, j):
    return graph.agents[graph.indptr[j]:graph.indptr[j + 1]]


@pytest.mark.parametrize(
    "model",
    [
        CorruptionModel(erasure_rate=0.4),
        CorruptionModel(dead_agent_rate=0.15),
        CorruptionModel(erasure_rate=0.2, dead_agent_rate=0.1),
    ],
    ids=["erasure", "dead", "both"],
)
def test_dropped_queries_never_invent_edges(model):
    # The corrupted graph is exactly the kept rows of the original, in
    # order — no new agents, counts, or reordering.
    meas = _measurements(m=90, seed=3)
    report = apply_corruption(meas, model, corruption_rng(8))
    graph, corrupted = meas.graph, report.measurements.graph
    kept_indices = np.flatnonzero(report.kept)
    assert corrupted.m == len(kept_indices)
    assert corrupted.n == graph.n and corrupted.gamma == graph.gamma
    for new_j, old_j in enumerate(kept_indices):
        assert np.array_equal(_row(corrupted, new_j), _row(graph, old_j))
    assert report.dropped_queries == meas.graph.m - len(kept_indices)
    assert len(report.measurements.results) == corrupted.m


def test_dead_agents_drop_every_touching_query():
    meas = _measurements(n=40, m=60, seed=4)
    model = CorruptionModel(dead_agent_rate=0.2)
    report = apply_corruption(meas, model, corruption_rng(21))
    dead = corruption_rng(21).random(meas.graph.n) < 0.2
    for j in range(meas.graph.m):
        touches_dead = bool(dead[_row(meas.graph, j)].any())
        assert report.kept[j] == (not touches_dead)


def test_flips_mirror_integer_channels():
    meas = _measurements(channel=repro.NoiselessChannel())
    report = apply_corruption(
        meas, CorruptionModel(flip_rate=0.5), corruption_rng(13)
    )
    flip_mask = corruption_rng(13).random(meas.graph.m) < 0.5
    sizes = meas.graph.query_sizes()
    expected = np.where(
        flip_mask, sizes - meas.results, meas.results
    ).astype(np.float64)
    assert np.array_equal(report.results_full, expected)


def test_flips_negate_gaussian_channels():
    meas = _measurements(channel=repro.GaussianQueryNoise(1.0))
    report = apply_corruption(
        meas, CorruptionModel(flip_rate=0.5), corruption_rng(13)
    )
    flip_mask = corruption_rng(13).random(meas.graph.m) < 0.5
    expected = np.where(flip_mask, -meas.results, meas.results)
    assert np.array_equal(report.results_full, expected)


def test_outliers_touch_values_but_not_structure():
    meas = _measurements()
    report = apply_corruption(
        meas, CorruptionModel(outlier_rate=0.3, outlier_scale=2.0),
        corruption_rng(17),
    )
    assert report.measurements.graph is meas.graph
    assert report.kept.all()
    changed = report.results_full != meas.results
    assert changed.sum() == report.outliers > 0


# -- statistical concentration ------------------------------------------


@given(rate=st.floats(0.05, 0.95), seed=st.integers(0, 2**32 - 1))
@settings(deadline=None, max_examples=40)
def test_flip_counts_concentrate_at_the_nominal_rate(rate, seed):
    # Binomial(m, rate) with m = 2000: a 5-sigma band never trips.
    meas = _measurements(n=60, k=3, m=2000, seed=1)
    report = apply_corruption(
        meas, CorruptionModel(flip_rate=rate), corruption_rng(seed)
    )
    m = meas.graph.m
    sigma = np.sqrt(m * rate * (1.0 - rate))
    assert abs(report.flipped - m * rate) <= 5.0 * sigma + 1.0


@given(rate=st.floats(0.05, 0.95), seed=st.integers(0, 2**32 - 1))
@settings(deadline=None, max_examples=40)
def test_erasure_counts_concentrate_at_the_nominal_rate(rate, seed):
    meas = _measurements(n=60, k=3, m=2000, seed=1)
    report = apply_corruption(
        meas, CorruptionModel(erasure_rate=rate), corruption_rng(seed)
    )
    m = meas.graph.m
    sigma = np.sqrt(m * rate * (1.0 - rate))
    assert abs(report.erased - m * rate) <= 5.0 * sigma + 1.0


# -- spec validation ----------------------------------------------------


@pytest.mark.parametrize(
    "kwargs",
    [
        {"flip_rate": -0.1},
        {"flip_rate": 1.5},
        {"erasure_rate": 2.0},
        {"outlier_rate": -1.0},
        {"dead_agent_rate": float("nan")},
        {"outlier_scale": -1.0},
    ],
)
def test_corruption_model_rejects_bad_rates(kwargs):
    with pytest.raises((ValueError, TypeError)):
        CorruptionModel(**kwargs)


def test_fault_spec_validation_and_describe():
    with pytest.raises(ValueError):
        FaultSpec(drop=1.5)
    with pytest.raises(ValueError, match="max_delay"):
        FaultSpec(delay=0.2)
    assert FaultSpec().is_null
    assert FaultSpec().describe() == "none"
    assert FaultSpec(drop=0.25).describe() == "fault(drop=0.25)"
    assert (
        FaultSpec(delay=0.1, max_delay=3).describe() == "fault(delay=0.1<=3)"
    )
    assert CorruptionModel().describe() == "none"
    assert (
        CorruptionModel(flip_rate=0.1, erasure_rate=0.2).describe()
        == "corruption(erase=0.2, flip=0.1)"
    )


def test_fault_spec_builds_a_seeded_model():
    from repro.distributed.messages import QueryResultMessage

    model = FaultSpec(drop=0.5).build(network_fault_rng(3))
    assert model.drop_probability == 0.5
    assert model.affected_types == (QueryResultMessage,)
    # Same seed, same fate sequence.
    again = FaultSpec(drop=0.5).build(network_fault_rng(3))
    env = type("E", (), {"payload": QueryResultMessage(0, 0.0)})()
    fates = [model.route(env) for _ in range(50)]
    assert fates == [again.route(env) for _ in range(50)]
    assert None in fates  # some drops at p = 0.5
