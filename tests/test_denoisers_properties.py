"""Property tests for the AMP denoisers and their dtype contract.

Parametrized (and hypothesis-driven) invariants of
:mod:`repro.amp.denoisers`: the Bayes posterior mean is a probability,
derivatives match central finite differences away from kinks,
``value_and_derivative`` is bit-identical to the separate calls,
float32 inputs stay float32 end to end and agree with the float64
arithmetic within float32 tolerance, and the fused ``kernel_form``
parameters reproduce the NumPy evaluation exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.amp.denoisers import (
    TAU_FLOOR,
    BayesBernoulliDenoiser,
    Denoiser,
    SoftThresholdDenoiser,
)

DENOISERS = [
    pytest.param(BayesBernoulliDenoiser(0.01), id="bayes-pi-0.01"),
    pytest.param(BayesBernoulliDenoiser(0.3), id="bayes-pi-0.3"),
    pytest.param(SoftThresholdDenoiser(1.5), id="soft-alpha-1.5"),
    pytest.param(SoftThresholdDenoiser(0.4), id="soft-alpha-0.4"),
]

TAUS = [0.05, 0.3, 1.0]


def _grid(dtype=np.float64):
    return np.linspace(-3.0, 4.0, 113).astype(dtype)


# -- range / shape invariants -------------------------------------------


@pytest.mark.parametrize("tau", TAUS)
@pytest.mark.parametrize("pi", [0.005, 0.05, 0.5, 0.9])
def test_bayes_mean_is_probability(pi, tau):
    eta = BayesBernoulliDenoiser(pi)(_grid(), tau)
    assert np.all(eta >= 0.0) and np.all(eta <= 1.0)
    assert np.all(np.isfinite(eta))


@given(
    x=st.floats(-1e6, 1e6),
    tau=st.floats(0.0, 1e3),
    pi=st.floats(1e-6, 1.0 - 1e-6),
)
@settings(deadline=None, max_examples=200)
def test_bayes_mean_is_probability_hypothesis(x, tau, pi):
    # Any scalar observation, any noise level (the floor handles
    # tau = 0), any prior: the posterior mean stays a finite
    # probability — the exponent clip prevents overflow at extremes.
    eta = float(BayesBernoulliDenoiser(pi)(np.array([x]), tau)[0])
    assert 0.0 <= eta <= 1.0


@given(x=st.floats(-1e6, 1e6), tau=st.floats(0.0, 1e3))
@settings(deadline=None, max_examples=200)
def test_soft_threshold_shrinks_toward_zero(x, tau):
    value = float(SoftThresholdDenoiser(1.5)(np.array([x]), tau)[0])
    assert abs(value) <= abs(x)
    assert value == 0.0 or np.sign(value) == np.sign(x)


@pytest.mark.parametrize("tau", TAUS)
def test_bayes_mean_monotone_in_x(tau):
    eta = BayesBernoulliDenoiser(0.05)(_grid(), tau)
    assert np.all(np.diff(eta) >= 0.0)


# -- derivatives vs central finite differences ---------------------------


@pytest.mark.parametrize("tau", TAUS)
@pytest.mark.parametrize("denoiser", DENOISERS)
def test_derivative_matches_finite_differences(denoiser, tau):
    x = _grid()
    h = 1e-6
    if isinstance(denoiser, SoftThresholdDenoiser):
        # The soft threshold is non-differentiable at |x| = alpha tau;
        # keep every probe point clear of the kink by more than h.
        x = x[np.abs(np.abs(x) - denoiser.alpha * tau) > 10 * h]
    fd = (denoiser(x + h, tau) - denoiser(x - h, tau)) / (2 * h)
    np.testing.assert_allclose(
        denoiser.derivative(x, tau), fd, rtol=1e-4, atol=1e-6
    )


@pytest.mark.parametrize("denoiser", DENOISERS)
def test_value_and_derivative_bit_identical(denoiser):
    x = _grid()
    tau = np.full((1, 1), 0.3)
    value, deriv = denoiser.value_and_derivative(x[None, :], tau)
    np.testing.assert_array_equal(value, denoiser(x[None, :], tau))
    np.testing.assert_array_equal(deriv, denoiser.derivative(x[None, :], tau))


@pytest.mark.parametrize("denoiser", DENOISERS)
def test_tau_floor_keeps_derivative_finite(denoiser):
    value, deriv = denoiser.value_and_derivative(_grid(), 0.0)
    assert np.all(np.isfinite(value))
    assert np.all(np.isfinite(deriv))
    # tau = 0 computes exactly as tau = TAU_FLOOR.
    np.testing.assert_array_equal(value, denoiser(_grid(), TAU_FLOOR))


# -- dtype contract ------------------------------------------------------


@pytest.mark.parametrize("denoiser", DENOISERS)
def test_float64_in_float64_out(denoiser):
    value, deriv = denoiser.value_and_derivative(_grid(), 0.3)
    assert value.dtype == np.float64
    assert deriv.dtype == np.float64


@pytest.mark.parametrize("denoiser", DENOISERS)
def test_float32_stays_float32(denoiser):
    x32 = _grid(np.float32)
    value, deriv = denoiser.value_and_derivative(x32, np.float32(0.3))
    assert value.dtype == np.float32
    assert deriv.dtype == np.float32


@pytest.mark.parametrize("tau", TAUS)
@pytest.mark.parametrize("denoiser", DENOISERS)
def test_float32_within_tolerance_of_float64(denoiser, tau):
    value64, deriv64 = denoiser.value_and_derivative(_grid(), tau)
    value32, deriv32 = denoiser.value_and_derivative(_grid(np.float32), tau)
    np.testing.assert_allclose(value32, value64, rtol=2e-5, atol=2e-6)
    # The derivative divides by tau^2, so scale the tolerance with it.
    scale = max(1.0, 1.0 / (tau * tau))
    np.testing.assert_allclose(
        deriv32, deriv64, rtol=5e-4, atol=2e-5 * scale
    )


def test_float32_extremes_do_not_overflow():
    # exp(88) already overflows float32: the dtype-dependent clip must
    # keep extreme observations finite in both precisions.
    x = np.array([-1e4, -50.0, 50.0, 1e4])
    for dtype in (np.float64, np.float32):
        eta = BayesBernoulliDenoiser(0.01)(x.astype(dtype), 0.05)
        assert np.all(np.isfinite(eta))
        assert eta.dtype == dtype


def test_exp_clip_for_dtypes():
    assert Denoiser.exp_clip_for(np.float64) == 500.0
    assert Denoiser.exp_clip_for(np.float32) == 80.0
    assert np.exp(Denoiser.exp_clip_for(np.float32)) < np.finfo(np.float32).max


# -- fused kernel form ---------------------------------------------------


def test_kernel_form_parameters():
    bayes = BayesBernoulliDenoiser(0.05)
    kind, params = bayes.kernel_form()
    assert kind == "bayes-bernoulli"
    assert params == (float(np.log(0.95 / 0.05)),)
    soft = SoftThresholdDenoiser(2.5)
    assert soft.kernel_form() == ("soft-threshold", (2.5,))


def test_kernel_form_defaults_to_none():
    class Identity(Denoiser):
        def __call__(self, x, tau):
            return np.asarray(x)

        def derivative(self, x, tau):
            return np.ones_like(np.asarray(x))

        def describe(self):
            return "identity"

    assert Identity().kernel_form() is None


def test_bayes_kernel_form_reproduces_numpy_evaluation():
    # The fused form's flat parameters, evaluated by hand, must equal
    # the vectorized NumPy path bit for bit — that is what lets a
    # native backend inline the denoiser.
    denoiser = BayesBernoulliDenoiser(0.02)
    (log_odds,) = denoiser.kernel_form()[1]
    x, tau = _grid(), 0.3
    exponent = np.clip(
        log_odds + (1.0 - 2.0 * x) / (2.0 * tau * tau), -500.0, 500.0
    )
    np.testing.assert_array_equal(
        denoiser(x, tau), 1.0 / (1.0 + np.exp(exponent))
    )
