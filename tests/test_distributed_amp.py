"""Tests for the distributed-AMP cost model."""

import numpy as np
import pytest

import repro
from repro.amp import (
    CommunicationCost,
    amp_communication_cost,
    greedy_communication_cost,
    run_distributed_amp,
)
from repro.distributed import run_distributed_algorithm1


def _measurements(seed=0, n=64, k=4, m=60):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    return repro.measure(graph, truth, repro.ZChannel(0.1), gen)


class TestGreedyCommunicationCost:
    def test_matches_actual_protocol_run(self):
        """The closed-form bill must equal the simulated network's."""
        meas = _measurements()
        cost = greedy_communication_cost(meas)
        report = run_distributed_algorithm1(meas, sorting_network="batcher")
        assert cost.messages == report.metrics.messages
        assert cost.bits == report.metrics.bits
        assert cost.rounds == report.metrics.rounds

    def test_scales_with_m(self):
        small = greedy_communication_cost(_measurements(m=20))
        large = greedy_communication_cost(_measurements(m=80))
        assert large.messages > small.messages

    def test_per_agent_messages(self):
        meas = _measurements()
        cost = greedy_communication_cost(meas)
        assert cost.per_agent_messages(meas.n) == pytest.approx(
            cost.messages / meas.n
        )


class TestAMPCommunicationCost:
    def test_linear_in_iterations(self):
        meas = _measurements()
        one = amp_communication_cost(meas, 1)
        ten = amp_communication_cost(meas, 10)
        incidences = int(meas.graph.distinct_sizes().sum())
        per_iter = 2 * incidences + meas.n
        assert ten.messages - one.messages == 9 * per_iter

    def test_rounds_grow_with_iterations(self):
        meas = _measurements()
        assert amp_communication_cost(meas, 10).rounds > amp_communication_cost(
            meas, 2
        ).rounds


class TestRunDistributedAMP:
    def test_result_matches_vectorized_amp(self):
        from repro.amp import run_amp

        meas = _measurements(m=100)
        report = run_distributed_amp(meas)
        plain = run_amp(meas)
        assert np.array_equal(report.result.estimate, plain.estimate)
        assert report.result.meta["algorithm"] == "amp-distributed"

    def test_kernel_flows_to_run_amp(self):
        """``kernel=`` selects the backend and lands in result meta."""
        meas = _measurements(m=100)
        report = run_distributed_amp(meas, kernel="numpy")
        assert report.result.meta["kernel"] == "numpy"
        default = run_distributed_amp(meas)
        assert np.array_equal(
            report.result.estimate, default.result.estimate
        )
        assert report.cost == default.cost

    def test_kernel_float32_changes_dtype_not_decode_contract(self):
        """The float32 backend runs and reports its own kernel name."""
        meas = _measurements(m=100)
        report = run_distributed_amp(meas, kernel="numpy32")
        assert report.result.meta["kernel"] == "numpy32"
        assert report.result.scores.dtype == np.float32

    def test_cost_uses_actual_iterations(self):
        meas = _measurements(m=100)
        report = run_distributed_amp(meas)
        expected = amp_communication_cost(meas, report.result.meta["iterations"])
        assert report.cost == expected

    def test_amp_messages_exceed_greedy(self):
        """The paper's efficiency claim, as an invariant."""
        meas = _measurements(m=100)
        amp_cost = run_distributed_amp(meas).cost
        greedy_cost = greedy_communication_cost(meas)
        assert amp_cost.messages > greedy_cost.messages
        assert amp_cost.bits > greedy_cost.bits
