"""Integration tests: distributed Algorithm 1 ≡ vectorized decoder."""

import numpy as np
import pytest

import repro
from repro.distributed import run_distributed_algorithm1
from repro.distributed.sorting import odd_even_transposition


def _make_measurements(seed, n=60, k=4, m=50, channel=None):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    channel = channel if channel is not None else repro.ZChannel(0.2)
    return repro.measure(graph, truth, channel, gen)


class TestEquivalenceWithVectorizedDecoder:
    @pytest.mark.parametrize("seed", range(8))
    def test_bit_identical_z_channel(self, seed):
        meas = _make_measurements(seed)
        vec = repro.greedy_reconstruct(meas)
        dist = run_distributed_algorithm1(meas).result
        assert np.array_equal(vec.estimate, dist.estimate)
        assert np.allclose(vec.scores, dist.scores)
        assert vec.exact == dist.exact
        assert vec.overlap == dist.overlap

    def test_bit_identical_gaussian(self):
        meas = _make_measurements(100, channel=repro.GaussianQueryNoise(1.0))
        vec = repro.greedy_reconstruct(meas)
        dist = run_distributed_algorithm1(meas).result
        assert np.array_equal(vec.estimate, dist.estimate)

    def test_bit_identical_noiseless(self):
        meas = _make_measurements(200, channel=repro.NoiselessChannel())
        vec = repro.greedy_reconstruct(meas)
        dist = run_distributed_algorithm1(meas).result
        assert np.array_equal(vec.estimate, dist.estimate)
        assert dist.exact  # easy instance must be solved

    def test_tie_breaking_matches(self):
        # Zero queries: all scores equal; tie-break must pick the same k.
        gen = np.random.default_rng(7)
        truth = repro.sample_ground_truth(10, 3, gen)
        graph = repro.sample_pooling_graph(10, 1, rng=gen)
        meas = repro.measure(graph, truth, rng=gen)
        vec = repro.greedy_reconstruct(meas)
        dist = run_distributed_algorithm1(meas).result
        assert np.array_equal(vec.estimate, dist.estimate)

    def test_alternative_network_same_answer(self):
        meas = _make_measurements(5, n=20, k=3, m=30)
        batcher = run_distributed_algorithm1(meas, sorting_network="batcher").result
        brick = run_distributed_algorithm1(
            meas, sorting_network="transposition"
        ).result
        assert np.array_equal(batcher.estimate, brick.estimate)

    def test_bitonic_power_of_two(self):
        meas = _make_measurements(6, n=32, k=3, m=40)
        bitonic = run_distributed_algorithm1(meas, sorting_network="bitonic").result
        vec = repro.greedy_reconstruct(meas)
        assert np.array_equal(bitonic.estimate, vec.estimate)


class TestProtocolMechanics:
    def test_message_accounting(self):
        meas = _make_measurements(1, n=16, k=2, m=10)
        report = run_distributed_algorithm1(meas)
        graph = meas.graph
        # Query broadcast: one message per distinct incidence.
        query_messages = int(graph.distinct_sizes().sum())
        # Sorting: two messages per comparator; announcements: k messages.
        expected = query_messages + 2 * report.sort_size + meas.k
        assert report.metrics.messages == expected

    def test_round_count(self):
        meas = _make_measurements(2, n=16, k=2, m=10)
        report = run_distributed_algorithm1(meas)
        # rounds = depth + 3 (broadcast, fold/first keys, ..., announce, set)
        assert report.metrics.rounds == report.sort_depth + 3

    def test_custom_schedule(self):
        meas = _make_measurements(3, n=12, k=2, m=15)
        schedule = odd_even_transposition(12)
        report = run_distributed_algorithm1(meas, schedule=schedule)
        vec = repro.greedy_reconstruct(meas)
        assert np.array_equal(report.result.estimate, vec.estimate)
        assert report.result.meta["sorting_network"] == "custom"

    def test_custom_schedule_size_mismatch(self):
        meas = _make_measurements(4, n=12, k=2, m=15)
        with pytest.raises(ValueError):
            run_distributed_algorithm1(meas, schedule=odd_even_transposition(13))

    def test_estimate_weight_is_k(self):
        meas = _make_measurements(8, n=40, k=6, m=30)
        report = run_distributed_algorithm1(meas)
        assert report.result.estimate.sum() == 6

    def test_single_agent_network(self):
        gen = np.random.default_rng(11)
        truth = repro.sample_ground_truth(1, 1, gen)
        graph = repro.sample_pooling_graph(1, 2, gamma=1, rng=gen)
        meas = repro.measure(graph, truth, rng=gen)
        report = run_distributed_algorithm1(meas)
        assert report.result.estimate.tolist() == [1]

    def test_metrics_scale_with_m(self):
        small = run_distributed_algorithm1(_make_measurements(12, m=10))
        large = run_distributed_algorithm1(_make_measurements(12, m=40))
        assert large.metrics.messages > small.metrics.messages
