"""Hardened wire protocol + elastic executor, driven by fault injection.

Covers the frame-level armor (size cap before allocation, HMAC before
unpickling, versioned handshake), the connect/backoff ladder, liveness
(pings answered mid-chunk, heartbeat timeout on a wedged worker), and
the :class:`~repro.experiments.faults.FaultyWorkerProxy` recovery
paths — every completed sweep bit-identical to serial no matter what
the proxy does to the wire.
"""

import socket
import threading
import time

import pytest

import repro
from repro.experiments import parallel
from repro.experiments.faults import FaultyWorkerProxy
from repro.experiments.scheduler import SweepExecutor, SweepPlan
from repro.experiments.worker import (
    AUTH_TOKEN_ENV,
    MAX_FRAME_ENV,
    AuthError,
    FrameTooLarge,
    ProtocolError,
    _reply_while_computing,
    client_handshake,
    connect,
    connect_with_retry,
    max_frame_bytes,
    recv_message,
    resolve_auth_key,
    resolve_connect_retry,
    send_message,
    serve_worker,
    start_local_workers,
)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    parallel.shutdown_pool()


@pytest.fixture(scope="module")
def socket_hosts():
    hosts, shutdown = start_local_workers(2)
    yield hosts
    shutdown()


def make_plan():
    plan = SweepPlan()
    plan.add_required_queries(
        120, 3, repro.ZChannel(0.1), trials=8, seed=5, check_every=4
    )
    plan.add_success_curve(
        120, 3, repro.ZChannel(0.1), [60, 120], trials=4, seed=6
    )
    return plan


@pytest.fixture(scope="module")
def serial_reference():
    return repr(make_plan().run(backend="serial"))


# -- framing ------------------------------------------------------------


class TestFrames:
    def test_round_trip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, ("hello", 1))
            assert recv_message(b) == ("hello", 1)
        finally:
            a.close()
            b.close()

    def test_oversized_frame_rejected_before_allocation(self):
        a, b = socket.socketpair()
        try:
            # A hostile 1 TiB length prefix: the cap must reject it
            # from the 8 header bytes alone, no allocation, no read.
            a.sendall((1 << 40).to_bytes(8, "big"))
            with pytest.raises(FrameTooLarge, match="cap"):
                recv_message(b)
        finally:
            a.close()
            b.close()

    def test_frame_cap_env_override(self, monkeypatch):
        monkeypatch.setenv(MAX_FRAME_ENV, "64")
        assert max_frame_bytes() == 64
        a, b = socket.socketpair()
        try:
            send_message(a, ("spec", "k", {"payload": "x" * 256}))
            with pytest.raises(FrameTooLarge):
                recv_message(b)
        finally:
            a.close()
            b.close()
        monkeypatch.setenv(MAX_FRAME_ENV, "not-a-number")
        with pytest.raises(ValueError, match=MAX_FRAME_ENV):
            max_frame_bytes()

    def test_wrong_key_rejected_before_unpickle(self):
        a, b = socket.socketpair()
        try:
            send_message(a, ("chunk",), key=resolve_auth_key("token-a"))
            with pytest.raises(AuthError, match="HMAC"):
                recv_message(b, key=resolve_auth_key("token-b"))
        finally:
            a.close()
            b.close()

    def test_tampered_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            import hashlib
            import hmac as hmac_module
            import pickle

            from repro.experiments.worker import _HEADER

            key = resolve_auth_key()
            payload = pickle.dumps(("ok", [1, 2, 3]))
            tag = hmac_module.new(key, payload, hashlib.sha256).digest()
            tampered = bytes([payload[0] ^ 1]) + payload[1:]
            a.sendall(_HEADER.pack(len(tampered)) + tag + tampered)
            with pytest.raises(AuthError):
                recv_message(b, key=key)
        finally:
            a.close()
            b.close()

    def test_resolve_auth_key(self, monkeypatch):
        monkeypatch.delenv(AUTH_TOKEN_ENV, raising=False)
        integrity = resolve_auth_key()
        assert resolve_auth_key() == integrity
        monkeypatch.setenv(AUTH_TOKEN_ENV, "cluster-secret")
        keyed = resolve_auth_key()
        assert keyed != integrity
        assert keyed == resolve_auth_key("cluster-secret")
        assert resolve_auth_key("other") != keyed


# -- handshake / server -------------------------------------------------


@pytest.fixture()
def live_worker():
    """One in-thread worker on an ephemeral port (no spawn overhead)."""
    box = {}
    ready = threading.Event()

    def serve():
        try:
            serve_worker(
                "127.0.0.1",
                0,
                ready=lambda p: (box.update(port=p), ready.set()),
            )
        except OSError:
            pass  # listener torn down at test exit

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    assert ready.wait(10)
    yield "127.0.0.1", box["port"]


class TestHandshake:
    def test_welcome(self, live_worker):
        conn = connect(live_worker)
        try:
            client_handshake(conn)  # no exception = welcomed
            send_message(conn, ("ping",))
            assert recv_message(conn) == ("pong",)
        finally:
            conn.close()

    def test_wrong_token_dropped(self, live_worker):
        conn = connect(live_worker)
        try:
            with pytest.raises(AuthError, match=AUTH_TOKEN_ENV):
                client_handshake(conn, key=resolve_auth_key("wrong"))
        finally:
            conn.close()

    def test_version_mismatch_rejected(self, live_worker):
        conn = connect(live_worker)
        try:
            send_message(conn, ("hello", 999))
            reply = recv_message(conn)
            assert reply[0] == "reject"
            assert "protocol" in reply[1]
        finally:
            conn.close()

    def test_ping_answered_mid_chunk(self):
        """The liveness guarantee: a worker busy computing still
        answers probes, so slow != dead."""
        a, b = socket.socketpair()
        key = resolve_auth_key()
        box = {}

        def serve():
            box["reply"] = _reply_while_computing(
                b, key, lambda: time.sleep(0.6) or 42
            )

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        try:
            send_message(a, ("ping",), key)
            assert recv_message(a, key) == ("pong",)  # while computing
            thread.join(timeout=10)
            assert box["reply"] == ("ok", 42)
        finally:
            a.close()
            b.close()

    def test_bind_failure_propagates(self):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen()
        port = blocker.getsockname()[1]
        try:
            with pytest.raises(OSError, match="could not bind"):
                serve_worker("127.0.0.1", port)
        finally:
            blocker.close()


# -- connect retry ------------------------------------------------------


class TestConnectRetry:
    def test_budget_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONNECT_RETRY", raising=False)
        assert resolve_connect_retry() == 30.0
        monkeypatch.setenv("REPRO_CONNECT_RETRY", "3.5")
        assert resolve_connect_retry() == 3.5
        assert resolve_connect_retry(1.0) == 1.0
        with pytest.raises(ValueError):
            resolve_connect_retry(-1)

    def test_late_worker_is_reached(self):
        """The worker host is still booting: retries must bridge the
        gap instead of failing the sweep on the first refusal."""
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()

        def late_start():
            time.sleep(0.6)
            serve_worker("127.0.0.1", port)

        threading.Thread(target=late_start, daemon=True).start()
        conn = connect_with_retry(("127.0.0.1", port), budget=15.0)
        try:
            send_message(conn, ("ping",))
            assert recv_message(conn) == ("pong",)
        finally:
            conn.close()

    def test_budget_exhaustion_raises(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        started = time.monotonic()
        with pytest.raises(OSError, match="could not reach worker"):
            connect_with_retry(("127.0.0.1", port), budget=0.4)
        assert time.monotonic() - started < 10

    def test_cancelled_aborts_with_none(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        assert (
            connect_with_retry(
                ("127.0.0.1", port), budget=30.0, cancelled=lambda: True
            )
            is None
        )


# -- fault-injection recovery (the chaos paths) -------------------------


class TestFaultRecovery:
    def test_proxy_passthrough(self, socket_hosts, serial_reference):
        proxy = FaultyWorkerProxy(socket_hosts[0]).start()
        try:
            got = make_plan().run(
                backend="socket",
                hosts=[proxy.address, socket_hosts[1]],
                connect_retry=0.5,
            )
            assert repr(got) == serial_reference
            assert proxy.chunks_relayed > 0
        finally:
            proxy.stop()

    def test_worker_killed_mid_sweep(self, socket_hosts, serial_reference):
        proxy = FaultyWorkerProxy(
            socket_hosts[0], kill_after_chunks=2
        ).start()
        try:
            ex = SweepExecutor(
                backend="socket",
                hosts=[proxy.address, socket_hosts[1]],
                connect_retry=0.5,
            )
            got = ex.run(make_plan())
            assert repr(got) == serial_reference
            stats = ex.last_socket_stats
            assert (
                stats["retired"]
                or stats["reconnects"]
                or stats["speculated"]
            )
        finally:
            proxy.stop()

    def test_wedged_worker_heartbeat_timeout(
        self, socket_hosts, serial_reference
    ):
        proxy = FaultyWorkerProxy(
            socket_hosts[0], freeze_after_chunks=1
        ).start()
        try:
            ex = SweepExecutor(
                backend="socket",
                hosts=[proxy.address, socket_hosts[1]],
                connect_retry=0.5,
                heartbeat_interval=0.2,
                heartbeat_timeout=1.0,
            )
            got = ex.run(make_plan())
            assert repr(got) == serial_reference
            assert ex.last_socket_stats["heartbeat_timeouts"] > 0
        finally:
            proxy.stop()

    def test_straggler_speculation(self, socket_hosts, serial_reference):
        proxy = FaultyWorkerProxy(socket_hosts[0], delay_reply=1.5).start()
        try:
            ex = SweepExecutor(
                backend="socket",
                hosts=[proxy.address, socket_hosts[1]],
                connect_retry=0.5,
                speculate=0.5,
            )
            got = ex.run(make_plan())
            assert repr(got) == serial_reference
            assert ex.last_socket_stats["speculated"] > 0
        finally:
            proxy.stop()

    def test_corrupted_reply_recovered(
        self, socket_hosts, serial_reference
    ):
        proxy = FaultyWorkerProxy(
            socket_hosts[0], corrupt_reply_index=1
        ).start()
        try:
            ex = SweepExecutor(
                backend="socket",
                hosts=[proxy.address, socket_hosts[1]],
                connect_retry=0.5,
            )
            got = ex.run(make_plan())
            assert repr(got) == serial_reference
            assert ex.last_socket_stats["reconnects"] > 0
        finally:
            proxy.stop()

    def test_unauthenticated_driver_rejected(self, socket_hosts):
        proxy = FaultyWorkerProxy(
            socket_hosts[0], corrupt_first_frame=True
        ).start()
        try:
            with pytest.raises((AuthError, ProtocolError)):
                connect_with_retry(
                    ("127.0.0.1", proxy.port), budget=0.5
                )
        finally:
            proxy.stop()

    def test_speculation_disabled_by_zero(self, socket_hosts):
        ex = SweepExecutor(
            backend="socket",
            hosts=list(socket_hosts),
            connect_retry=0.5,
            speculate=0,
        )
        plan = SweepPlan()
        plan.add_required_queries(
            100, 3, repro.ZChannel(0.1), trials=4, seed=1
        )
        ex.run(plan)
        assert ex.last_socket_stats["speculated"] == 0
