"""Tests for channel-parameter estimation.

Includes the identifiability story: marginal results are exactly
``Bin(Gamma, r)``, so one-parameter families are estimated from the
mean, the Gaussian level from the excess variance, and the general
``(p, q)`` pair only with a decoded bit estimate in hand.
"""

import numpy as np
import pytest

import repro
from repro.core.estimation import (
    channel_moments,
    effective_read_rate,
    estimate_effective_rate,
    estimate_gaussian_noise,
    estimate_general_channel,
    estimate_symmetric_channel,
    estimate_z_channel,
    fit_channel,
)


def _measurements(channel, seed=0, n=400, k=40, m=600):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    return repro.measure(graph, truth, channel, gen)


class TestChannelMoments:
    def test_noiseless_moments(self):
        mean, var = channel_moments(0.0, 0.0, gamma=200, kappa=0.1)
        assert mean == pytest.approx(20.0)
        assert var == pytest.approx(200 * 0.1 * 0.9)

    def test_results_are_binomial_in_r(self):
        """The identifiability fact: results ~ Bin(Gamma, r) exactly."""
        gen = np.random.default_rng(1)
        gamma, kappa, trials = 300, 0.1, 40_000
        p, q = 0.2, 0.05
        channel = repro.NoisyChannel(p, q)
        e1 = gen.binomial(gamma, kappa, size=trials)
        samples = channel.measure(e1, gamma, gen)
        r = effective_read_rate(p, q, kappa)
        assert samples.mean() == pytest.approx(gamma * r, rel=0.01)
        assert samples.var() == pytest.approx(gamma * r * (1 - r), rel=0.05)

    def test_confusable_pairs_share_moments(self):
        # Two (p, q) pairs with equal r are distributionally identical.
        kappa = 0.1
        r = effective_read_rate(0.3, 0.0, kappa)
        q2 = (r - kappa * 0.5) / (1 - kappa)  # pick p=0.5, solve q
        m1 = channel_moments(0.3, 0.0, 200, kappa)
        m2 = channel_moments(0.5, q2, 200, kappa)
        assert m1 == pytest.approx(m2)


class TestEffectiveRate:
    def test_recovers_r(self):
        meas = _measurements(repro.NoisyChannel(0.3, 0.02), seed=2)
        r_hat = estimate_effective_rate(meas.results, meas.graph.gamma)
        r = effective_read_rate(0.3, 0.02, meas.k / meas.n)
        assert r_hat == pytest.approx(r, abs=0.01)


class TestZChannelEstimation:
    @pytest.mark.parametrize("p", [0.05, 0.1, 0.3, 0.5])
    def test_recovers_p(self, p):
        meas = _measurements(repro.ZChannel(p), seed=int(p * 100))
        p_hat = estimate_z_channel(meas.results, meas.graph.gamma, meas.k, meas.n)
        assert p_hat == pytest.approx(p, abs=0.03)

    def test_noiseless_estimates_zero(self):
        meas = _measurements(repro.NoiselessChannel(), seed=9)
        p_hat = estimate_z_channel(meas.results, meas.graph.gamma, meas.k, meas.n)
        assert p_hat == pytest.approx(0.0, abs=0.02)

    def test_clipped_into_valid_range(self):
        p_hat = estimate_z_channel(np.full(10, 1e6), 100, 10, 100)
        assert 0.0 <= p_hat < 1.0

    def test_too_few_results_rejected(self):
        with pytest.raises(ValueError):
            estimate_z_channel(np.array([1.0]), 100, 10, 100)


class TestSymmetricEstimation:
    @pytest.mark.parametrize("p", [0.01, 0.1, 0.3])
    def test_recovers_p(self, p):
        meas = _measurements(repro.NoisyChannel(p, p), seed=int(p * 1000) + 1)
        p_hat = estimate_symmetric_channel(
            meas.results, meas.graph.gamma, meas.k, meas.n
        )
        assert p_hat == pytest.approx(p, abs=0.03)

    def test_unidentifiable_at_half(self):
        with pytest.raises(ValueError):
            estimate_symmetric_channel(np.zeros(10), 100, 50, 100)


class TestGeneralEstimation:
    @pytest.mark.parametrize("p,q", [(0.2, 0.05), (0.1, 0.1), (0.3, 0.0)])
    def test_recovers_pq_with_true_sigma(self, p, q):
        meas = _measurements(
            repro.NoisyChannel(p, q), seed=int(p * 100 + q * 10) + 2, m=3000
        )
        p_hat, q_hat = estimate_general_channel(meas, meas.truth.sigma)
        assert p_hat == pytest.approx(p, abs=0.05)
        assert q_hat == pytest.approx(q, abs=0.03)

    def test_recovers_pq_with_decoded_sigma(self):
        # Realistic pipeline: decode first, then estimate from sigma_hat.
        meas = _measurements(repro.NoisyChannel(0.1, 0.02), seed=3, m=3000)
        decoded = repro.greedy_reconstruct(meas, centering="oracle")
        p_hat, q_hat = estimate_general_channel(meas, decoded.estimate)
        assert p_hat == pytest.approx(0.1, abs=0.08)
        assert q_hat == pytest.approx(0.02, abs=0.04)

    def test_shape_validation(self):
        meas = _measurements(repro.ZChannel(0.1), seed=4)
        with pytest.raises(ValueError):
            estimate_general_channel(meas, np.zeros(meas.n + 1))

    def test_constant_e1_rejected(self):
        meas = _measurements(repro.ZChannel(0.1), seed=5)
        with pytest.raises(ValueError):
            estimate_general_channel(meas, np.zeros(meas.n))  # E1_hat all 0

    def test_admissibility(self):
        meas = _measurements(repro.NoisyChannel(0.45, 0.45), seed=6, m=2000)
        p_hat, q_hat = estimate_general_channel(meas, meas.truth.sigma)
        assert p_hat + q_hat < 1.0
        assert p_hat >= 0.0 and q_hat >= 0.0


class TestGaussianEstimation:
    @pytest.mark.parametrize("lam", [0.5, 2.0, 5.0])
    def test_recovers_lambda(self, lam):
        meas = _measurements(
            repro.GaussianQueryNoise(lam), seed=int(lam * 10) + 3, m=2000
        )
        lam_hat = estimate_gaussian_noise(
            meas.results, meas.graph.gamma, meas.k, meas.n
        )
        assert lam_hat == pytest.approx(lam, abs=0.4 + 0.1 * lam)

    def test_noiseless_floors_at_zero(self):
        meas = _measurements(repro.NoiselessChannel(), seed=4, m=2000)
        lam_hat = estimate_gaussian_noise(
            meas.results, meas.graph.gamma, meas.k, meas.n
        )
        assert lam_hat < 1.0  # sampling noise only


def _regular_measurements(channel, seed=0, n=600, k=60, m=120, agent_degree=24):
    """Variable-size measurements from the constant-column-weight design."""
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_regular_design(n, m, agent_degree, rng=gen)
    assert np.ptp(graph.query_sizes()) > 0  # genuinely variable sizes
    return repro.measure(graph, truth, channel, gen)


class TestVariableSizeEstimation:
    """Regression tests: estimators must use realized query sizes, not
    the nominal expected ``gamma`` of variable-size designs."""

    def test_effective_rate_accepts_size_array(self):
        meas = _regular_measurements(repro.NoisyChannel(0.3, 0.02), seed=2)
        sizes = meas.graph.query_sizes()
        r_hat = estimate_effective_rate(meas.results, sizes)
        r = effective_read_rate(0.3, 0.02, meas.k / meas.n)
        assert r_hat == pytest.approx(r, abs=0.02)

    def test_size_array_shape_validated(self):
        with pytest.raises(ValueError):
            estimate_effective_rate(np.zeros(5), np.full(4, 10))
        with pytest.raises(ValueError):
            estimate_effective_rate(np.zeros(5), np.zeros(5))  # all empty
        with pytest.raises(ValueError):
            estimate_effective_rate(np.zeros(5), np.full(5, -1))  # sizes >= 0

    def test_non_integer_scalar_gamma_rejected(self):
        # A float nominal size (e.g. n * agent_degree / m) must raise,
        # not be silently truncated into a biased estimate.
        with pytest.raises(TypeError):
            estimate_effective_rate(np.full(10, 5.0), 10.7)
        with pytest.raises(TypeError):
            estimate_effective_rate(np.full(10, 5.0), np.full(10, 10.7))

    def test_collinear_e1_and_sizes_rejected(self):
        # sigma_hat = all-ones makes E1_hat == query sizes: the
        # two-regressor fit is rank deficient and must fail loudly like
        # the fixed-size path does for constant E1_hat.
        meas = _regular_measurements(repro.NoisyChannel(0.2, 0.05), seed=9)
        with pytest.raises(ValueError):
            estimate_general_channel(meas, np.ones(meas.n, dtype=np.int8))

    def test_empty_queries_are_tolerated(self):
        # Regular designs routinely leave some queries without agents;
        # a 0-size query is valid data (its exact sum is always 0).
        gen = np.random.default_rng(13)
        truth = repro.sample_ground_truth(20, 2, gen)
        graph = repro.sample_regular_design(20, 60, agent_degree=3, rng=gen)
        assert graph.query_sizes().min() == 0  # genuinely has empty queries
        meas = repro.measure(graph, truth, repro.ZChannel(0.2), gen)
        fitted = fit_channel("z", meas)
        assert 0.0 <= fitted.p < 1.0
        r_hat = estimate_effective_rate(meas.results, graph.query_sizes())
        assert 0.0 <= r_hat <= 1.0

    def test_fit_z_on_regular_design(self):
        meas = _regular_measurements(repro.ZChannel(0.2), seed=5)
        fitted = fit_channel("z", meas)
        assert fitted.p == pytest.approx(0.2, abs=0.04)

    def test_gaussian_noise_on_regular_design(self):
        lam = 3.0
        meas = _regular_measurements(
            repro.GaussianQueryNoise(lam), seed=7, m=2000, agent_degree=100
        )
        lam_hat = estimate_gaussian_noise(
            meas.results, meas.graph.query_sizes(), meas.k, meas.n
        )
        assert lam_hat == pytest.approx(lam, abs=0.8)

    def test_general_channel_on_regular_design(self):
        meas = _regular_measurements(
            repro.NoisyChannel(0.2, 0.05), seed=9, m=3000, agent_degree=150
        )
        p_hat, q_hat = estimate_general_channel(meas, meas.truth.sigma)
        assert p_hat == pytest.approx(0.2, abs=0.06)
        assert q_hat == pytest.approx(0.05, abs=0.04)

    def test_scalar_fast_path_unchanged(self):
        # For the fixed-size design the array path must collapse to the
        # legacy scalar formulas exactly.
        meas = _measurements(repro.ZChannel(0.2), seed=11)
        scalar = estimate_z_channel(meas.results, meas.graph.gamma, meas.k, meas.n)
        array = estimate_z_channel(
            meas.results, meas.graph.query_sizes(), meas.k, meas.n
        )
        assert scalar == array


class TestFitChannel:
    def test_fit_z(self):
        meas = _measurements(repro.ZChannel(0.2), seed=5)
        fitted = fit_channel("z", meas)
        assert isinstance(fitted, repro.ZChannel)
        assert fitted.p == pytest.approx(0.2, abs=0.03)

    def test_fit_gaussian(self):
        meas = _measurements(repro.GaussianQueryNoise(2.0), seed=6, m=2000)
        fitted = fit_channel("gaussian", meas)
        assert isinstance(fitted, repro.GaussianQueryNoise)

    def test_fit_general_requires_sigma_hat(self):
        meas = _measurements(repro.NoisyChannel(0.15, 0.05), seed=7)
        with pytest.raises(ValueError):
            fit_channel("general", meas)
        fitted = fit_channel("general", meas, sigma_hat=meas.truth.sigma)
        assert isinstance(fitted, repro.NoisyChannel)

    def test_fit_symmetric(self):
        meas = _measurements(repro.NoisyChannel(0.1, 0.1), seed=8)
        fitted = fit_channel("symmetric", meas)
        assert fitted.p == fitted.q

    def test_unknown_family(self):
        meas = _measurements(repro.ZChannel(0.1), seed=9)
        with pytest.raises(ValueError):
            fit_channel("bogus", meas)

    def test_fitted_oracle_centering_decodes(self):
        """End to end: estimated channel powers the oracle centering."""
        gen = np.random.default_rng(10)
        n, k, m = 400, 4, 2000
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        channel = repro.NoisyChannel(0.05, 0.05)
        meas = repro.measure(graph, truth, channel, gen)
        fitted = fit_channel("symmetric", meas)

        from repro.core.scores import centered_scores, expected_query_result
        from repro.core.types import evaluate_estimate

        psi = graph.neighborhood_sums(meas.results)
        expected = expected_query_result(fitted, n, k, graph.gamma)
        scores = centered_scores(
            psi, graph.distinct_degrees(), k, mode="oracle", expected_result=expected
        )
        estimate = repro.top_k_estimate(scores, k)
        out = evaluate_estimate(estimate, truth.sigma)
        assert out["exact"]
