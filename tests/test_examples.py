"""Smoke tests for the service-client examples.

Each example runs as a real subprocess in ``--quick`` mode: it starts
its own decode server on an ephemeral port, streams measurements as a
client, and (for the cluster example) asserts service/local
bit-identity itself — a nonzero exit code is a failure either way.
"""

import os
import subprocess
import sys
from pathlib import Path

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"
SRC = Path(__file__).resolve().parent.parent / "src"


def run_example(name, *args, timeout=600):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), "--quick", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=timeout,
    )


def test_epidemic_screening_quick():
    proc = run_example("epidemic_screening.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "certified tests" in proc.stdout
    # The overwhelming-noise run must land in the failure phase.
    assert "no certificate" in proc.stdout


def test_gpu_cluster_quick():
    proc = run_example("gpu_cluster.py")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "bit-identical to standalone decoding" in proc.stdout
