"""Tests for the figure reproduction entry points (tiny grids)."""

import math

import pytest

import repro
from repro.experiments.figures import (
    FIGURES,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    run_figure,
)


TINY_NS = (60, 120)


class TestFigure2:
    def test_structure(self):
        result = figure2(n_values=TINY_NS, ps=(0.1,), trials=2, seed=0)
        assert result.figure == "fig2"
        sim = result.series("p=0.1")
        theory = result.series("theory p=0.1")
        assert len(sim) == len(TINY_NS)
        assert len(theory) == len(TINY_NS)
        for row in sim:
            assert row["required_m_median"] > 0

    def test_theory_rows_match_bound(self):
        result = figure2(n_values=(200,), ps=(0.1,), trials=1, seed=0)
        theory = result.series("theory p=0.1")[0]
        expected = repro.theorem1_sublinear_z(200, 0.25, 0.1, 0.05)
        assert theory["required_m_median"] == pytest.approx(expected)

    def test_render_contains_series(self):
        result = figure2(n_values=(60,), ps=(0.3,), trials=1, seed=0)
        text = result.render()
        assert "p=0.3" in text
        assert "fig2" in text

    def test_noisier_series_higher(self):
        result = figure2(n_values=(300,), ps=(0.0, 0.5), trials=4, seed=1)
        clean = result.series("p=0")[0]["required_m_median"]
        noisy = result.series("p=0.5")[0]["required_m_median"]
        assert noisy > clean

    def test_amp_required_m_curves_beside_greedy(self):
        # algorithms=("greedy", "amp") adds algorithm-prefixed series;
        # single-algorithm runs keep the historical unprefixed labels.
        result = figure2(
            n_values=(120,),
            ps=(0.1,),
            trials=2,
            seed=0,
            check_every=4,
            algorithms=("greedy", "amp"),
        )
        greedy = result.series("greedy p=0.1")
        amp = result.series("amp p=0.1")
        assert len(greedy) == len(amp) == 1
        assert greedy[0]["required_m_median"] > 0
        assert amp[0]["required_m_median"] > 0
        assert result.params["algorithms"] == ["greedy", "amp"]

    def test_figure5_amp_series(self):
        result = figure5(
            n_values=(120,),
            ps=(0.1,),
            lams=(),
            trials=2,
            seed=0,
            check_every=4,
            algorithms=("greedy", "amp"),
        )
        assert result.series("amp Z p=0.1")
        assert result.series("greedy Z p=0.1")


class TestFigure3:
    def test_structure(self):
        result = figure3(n_values=TINY_NS, lams=(1.0,), trials=2, seed=0)
        assert result.series("without noise")
        assert result.series("lambda=1")
        assert result.series("theory (Thm 2)")

    def test_noise_increases_queries(self):
        result = figure3(n_values=(300,), lams=(3.0,), trials=4, seed=2)
        clean = result.series("without noise")[0]["required_m_median"]
        noisy = result.series("lambda=3")[0]["required_m_median"]
        assert noisy > clean


class TestFigure4:
    def test_structure(self):
        result = figure4(n_values=TINY_NS, qs=(0.01,), trials=2, seed=0)
        assert result.series("q=0.01")
        assert result.series("theory q=0.01")

    def test_larger_q_needs_more_queries(self):
        result = figure4(n_values=(400,), qs=(1e-4, 0.1), trials=4, seed=3)
        small_q = result.series("q=0.0001")[0]["required_m_median"]
        large_q = result.series("q=0.1")[0]["required_m_median"]
        assert large_q > small_q

    def test_gnc_bound_scales_with_n(self):
        result = figure4(n_values=(100, 400), qs=(0.01,), trials=1, seed=0)
        theory = result.series("theory q=0.01")
        assert theory[1]["required_m_median"] > theory[0]["required_m_median"]


class TestFigure5:
    def test_structure(self):
        result = figure5(
            n_values=(120,), ps=(0.1,), lams=(0.0, 1.0), trials=6, seed=0
        )
        labels = {row["series"] for row in result.rows}
        assert labels == {"Z p=0.1", "lambda=0", "lambda=1"}
        for row in result.rows:
            assert row["q1"] <= row["median"] <= row["q3"]
            assert row["whisker_low"] <= row["q1"]
            assert row["q3"] <= row["whisker_high"]


class TestFigure6:
    def test_structure_and_phase_transition(self):
        result = figure6(
            n=150,
            ps=(0.1,),
            m_values=(10, 80, 200),
            trials=8,
            seed=0,
            algorithms=("greedy",),
        )
        rows = result.series("greedy p=0.1")
        assert [row["m"] for row in rows] == [10, 80, 200]
        assert rows[0]["success_rate"] <= rows[-1]["success_rate"]

    def test_amp_included(self):
        result = figure6(
            n=150, ps=(0.1,), m_values=(60,), trials=4, seed=0,
            algorithms=("greedy", "amp"),
        )
        assert result.series("amp p=0.1")
        assert result.series("greedy p=0.1")

    def test_theory_row(self):
        result = figure6(
            n=150, ps=(0.1,), m_values=(60,), trials=2, seed=0,
            algorithms=("greedy",),
        )
        theory = result.series("theory p=0.1")
        assert len(theory) == 1
        assert theory[0]["m"] == pytest.approx(
            repro.theorem1_sublinear_z(150, 0.25, 0.1, 0.1)
        )


class TestFigure7:
    def test_overlap_curve(self):
        result = figure7(n=150, ps=(0.1,), m_values=(10, 150), trials=8, seed=0)
        rows = result.series("p=0.1")
        assert rows[0]["overlap"] <= rows[-1]["overlap"] + 0.2
        for row in rows:
            assert 0.0 <= row["overlap"] <= 1.0

    def test_overlap_dominates_success(self):
        result = figure7(n=150, ps=(0.3,), m_values=(60,), trials=10, seed=1)
        row = result.series("p=0.3")[0]
        assert row["overlap"] >= row["success_rate"] - 1e-9


class TestDesignAblation:
    def test_structure_and_comparable_designs(self):
        from repro.experiments.figures import figure_design_ablation

        result = figure_design_ablation(
            n_values=(200,), trials=8, m_points=8, seed=3
        )
        assert result.figure == "ablation_design"
        assert {row["series"] for row in result.rows} == {
            "replacement", "regular",
        }
        by_design = {row["series"]: row for row in result.rows}
        # Both designs must reach the 50% level on the grid and land in
        # the same order of magnitude (the paper's multigraph costs at
        # most a small constant over the regular design).
        for row in by_design.values():
            assert row["required_m_p50"] is not None
            assert row["n"] == 200
        ratio = (
            by_design["replacement"]["required_m_p50"]
            / by_design["regular"]["required_m_p50"]
        )
        assert 1 / 4 <= ratio <= 4, by_design

    def test_routed_through_engine_backends(self):
        # The ablation is a multi-cell plan like figures 2-5: sharding
        # it must not change a single row.
        from repro.experiments.figures import figure_design_ablation

        kwargs = dict(n_values=(150,), trials=6, m_points=6, seed=1)
        serial = figure_design_ablation(**kwargs)
        sharded = figure_design_ablation(workers=2, **kwargs)
        assert serial.rows == sharded.rows


class TestRunFigure:
    def test_dispatch(self):
        result = run_figure("fig2", n_values=(60,), ps=(0.1,), trials=1, seed=0)
        assert result.figure == "fig2"

    def test_unknown_figure(self):
        with pytest.raises(ValueError):
            run_figure("fig99")

    def test_all_figures_registered(self):
        assert set(FIGURES) == {
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "ablation_design",
            "robustness_degradation", "robustness_loss", "robustness_comm",
        }


class TestFigureResultIO:
    def test_save_roundtrip(self, tmp_path):
        result = figure2(n_values=(60,), ps=(0.1,), trials=1, seed=0)
        result.save(tmp_path)
        assert (tmp_path / "fig2.json").exists()
        assert (tmp_path / "fig2.csv").exists()
        from repro.experiments.storage import load_csv, load_json

        blob = load_json(tmp_path / "fig2.json")
        assert blob["figure"] == "fig2"
        rows = load_csv(tmp_path / "fig2.csv")
        assert len(rows) == len(result.rows)
