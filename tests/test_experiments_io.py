"""Tests for storage and table rendering."""

import numpy as np
import pytest

from repro.experiments.storage import (
    load_csv,
    load_json,
    load_required_queries_sample,
    save_csv,
    save_json,
)
from repro.experiments.tables import format_cell, render_kv, render_table


class TestJson:
    def test_roundtrip_dict(self, tmp_path):
        path = save_json(tmp_path / "x.json", {"a": 1, "b": [1.5, 2.5]})
        assert load_json(path) == {"a": 1, "b": [1.5, 2.5]}

    def test_numpy_types_converted(self, tmp_path):
        obj = {
            "i": np.int64(3),
            "f": np.float64(1.5),
            "arr": np.array([1, 2]),
            "flag": np.bool_(True),
        }
        path = save_json(tmp_path / "np.json", obj)
        blob = load_json(path)
        assert blob == {"i": 3, "f": 1.5, "arr": [1, 2], "flag": True}

    def test_dataclass_serialized(self, tmp_path):
        from repro.experiments.stats import boxplot_stats

        stats = boxplot_stats([1, 2, 3])
        blob = load_json(save_json(tmp_path / "d.json", stats))
        assert blob["median"] == 2

    def test_nested_dirs_created(self, tmp_path):
        path = save_json(tmp_path / "a" / "b" / "c.json", [1])
        assert path.exists()


class TestCsv:
    def test_roundtrip(self, tmp_path):
        rows = [{"x": 1, "y": "a"}, {"x": 2, "y": "b"}]
        path = save_csv(tmp_path / "t.csv", rows)
        back = load_csv(path)
        assert back[0]["x"] == "1"
        assert back[1]["y"] == "b"

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            save_csv(tmp_path / "e.csv", [])

    def test_explicit_fieldnames(self, tmp_path):
        rows = [{"x": 1, "y": 2}]
        path = save_csv(tmp_path / "f.csv", rows, fieldnames=["y", "x"])
        text = path.read_text()
        assert text.splitlines()[0] == "y,x"


class TestRequiredQueriesSampleRoundTrip:
    def _sample(self, algorithm):
        from repro.experiments.runner import RequiredQueriesSample

        return RequiredQueriesSample(
            n=150,
            k=3,
            channel="z-channel(p=0.1)",
            values=[20, 24, 20],
            failures=1,
            algorithm=algorithm,
        )

    @pytest.mark.parametrize("algorithm", ["greedy", "amp"])
    def test_roundtrip_preserves_algorithm(self, tmp_path, algorithm):
        sample = self._sample(algorithm)
        path = save_json(tmp_path / "sample.json", sample)
        loaded = load_required_queries_sample(path)
        assert loaded == sample
        assert loaded.algorithm == algorithm
        assert repr(loaded) == repr(sample)
        assert f"algorithm='{algorithm}'" in repr(loaded)

    def test_pre_algorithm_artifacts_load_as_greedy(self, tmp_path):
        # Sweep artifacts written before the field existed carry no
        # algorithm key; they must rehydrate as greedy samples.
        legacy = {
            "n": 100,
            "k": 4,
            "channel": "noiseless",
            "values": [12, 15],
            "failures": 0,
        }
        path = save_json(tmp_path / "legacy.json", legacy)
        loaded = load_required_queries_sample(path)
        assert loaded.algorithm == "greedy"
        assert loaded.values == [12, 15]
        # dict input is accepted directly, too
        assert load_required_queries_sample(legacy) == loaded


class TestTables:
    def test_render_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_format_cell_floats(self):
        assert format_cell(0.000123456) == "1.235e-04"
        assert format_cell(1234567.0) == "1.235e+06"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(float("nan")) == "nan"
        assert format_cell(0.0) == "0"

    def test_format_cell_non_float(self):
        assert format_cell(7) == "7"
        assert format_cell(True) == "True"
        assert format_cell("x") == "x"

    def test_render_kv(self):
        text = render_kv("Params", [("n", 100), ("p", 0.25)])
        assert "Params" in text
        assert "n" in text and "100" in text
