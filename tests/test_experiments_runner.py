"""Tests for the experiment trial runner."""

import re

import numpy as np
import pytest

import repro
from repro.experiments.runner import (
    ENGINES,
    RequiredQueriesSample,
    _check_engine,
    required_queries_trials,
    run_many,
    success_rate_curve,
)


class TestCheckEngine:
    def test_alias_maps_to_legacy(self):
        assert _check_engine("per-query") == "legacy"

    def test_canonical_engines_pass_through(self):
        for engine in ENGINES:
            assert _check_engine(engine) == engine

    def test_error_lists_every_engine_exactly_once(self):
        with pytest.raises(ValueError) as err:
            _check_engine("warp")
        message = str(err.value)
        for name in (*ENGINES, "per-query"):
            assert len(re.findall(f"'{name}'", message)) == 1

    def test_unknown_engine_rejected_by_entry_points(self):
        with pytest.raises(ValueError, match="unknown engine"):
            required_queries_trials(
                100, 3, repro.ZChannel(0.1), trials=1, engine="warp"
            )
        with pytest.raises(ValueError, match="unknown engine"):
            success_rate_curve(
                100, 3, repro.ZChannel(0.1), [10], trials=1, engine="warp"
            )


class TestWorkersValidation:
    def test_negative_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            required_queries_trials(
                100, 3, repro.ZChannel(0.1), trials=2, workers=-1
            )
        with pytest.raises(ValueError, match="workers"):
            success_rate_curve(
                100, 3, repro.ZChannel(0.1), [10], trials=2, workers=-2
            )

    def test_non_integer_workers_rejected(self):
        with pytest.raises(TypeError, match="workers"):
            required_queries_trials(
                100, 3, repro.ZChannel(0.1), trials=2, workers=1.5
            )


class TestRequiredQueriesTrials:
    def test_collects_all_trials(self):
        sample = required_queries_trials(
            150, 4, repro.NoiselessChannel(), trials=5, seed=1
        )
        assert sample.trials == 5
        assert len(sample.values) == 5
        assert sample.failures == 0
        assert sample.median > 0

    def test_reproducible(self):
        a = required_queries_trials(150, 4, repro.ZChannel(0.1), trials=4, seed=9)
        b = required_queries_trials(150, 4, repro.ZChannel(0.1), trials=4, seed=9)
        assert a.values == b.values

    def test_different_seeds_vary(self):
        a = required_queries_trials(150, 4, repro.ZChannel(0.1), trials=4, seed=1)
        b = required_queries_trials(150, 4, repro.ZChannel(0.1), trials=4, seed=2)
        assert a.values != b.values

    def test_failures_counted(self):
        sample = required_queries_trials(
            200, 5, repro.ZChannel(0.1), trials=3, seed=0, max_m=2
        )
        assert sample.failures == 3
        assert sample.values == []
        assert np.isnan(sample.median)

    def test_channel_label(self):
        sample = required_queries_trials(
            100, 3, repro.ZChannel(0.2), trials=2, seed=0
        )
        assert "z-channel" in sample.channel


class TestSuccessRateCurve:
    def test_monotone_trend_greedy(self):
        curve = success_rate_curve(
            200,
            4,
            repro.NoiselessChannel(),
            [10, 60, 200],
            trials=20,
            seed=3,
        )
        assert curve.success_rates[0] <= curve.success_rates[-1]
        assert curve.success_rates[-1] >= 0.9

    def test_overlap_at_least_success(self):
        curve = success_rate_curve(
            200, 4, repro.ZChannel(0.2), [30, 120], trials=15, seed=4
        )
        for rate, overlap in zip(curve.success_rates, curve.overlaps):
            assert overlap >= rate - 1e-9

    def test_amp_algorithm(self):
        curve = success_rate_curve(
            200, 4, repro.NoiselessChannel(), [80], algorithm="amp", trials=5, seed=5
        )
        assert curve.algorithm == "amp"
        assert curve.success_rates[0] >= 0.8

    def test_amp_harness_dispatch_drops_history(self, rng):
        # Sweeps keep only the decode outcome; the harness dispatch must
        # not build O(iterations) history dicts per trial (the default
        # stays on for direct run_amp calls, pinned in test_amp.py).
        from repro.experiments.runner import _run_algorithm

        truth = repro.sample_ground_truth(200, 4, rng)
        graph = repro.sample_pooling_graph(200, 80, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = _run_algorithm("amp", meas)
        assert result.meta["history"] == []

    def test_distributed_algorithm_matches_greedy(self):
        greedy = success_rate_curve(
            40, 3, repro.ZChannel(0.1), [30], algorithm="greedy", trials=5, seed=6
        )
        dist = success_rate_curve(
            40, 3, repro.ZChannel(0.1), [30], algorithm="distributed", trials=5, seed=6
        )
        assert greedy.success_rates == dist.success_rates

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            success_rate_curve(100, 3, repro.ZChannel(0.1), [10], algorithm="magic")

    def test_crossing(self):
        curve = success_rate_curve(
            200, 4, repro.NoiselessChannel(), [5, 50, 150], trials=10, seed=7
        )
        crossing = curve.crossing(0.5)
        assert crossing in (5, 50, 150, None)
        if curve.success_rates[-1] >= 0.5:
            assert crossing is not None

    def test_rates_in_unit_interval(self):
        curve = success_rate_curve(
            100, 3, repro.ZChannel(0.3), [20, 40], trials=10, seed=8
        )
        for r in curve.success_rates + curve.overlaps:
            assert 0.0 <= r <= 1.0


class TestRunMany:
    def test_runs_trials(self):
        outputs = run_many(lambda gen: gen.integers(0, 100), trials=5, seed=0)
        assert len(outputs) == 5

    def test_reproducible(self):
        a = run_many(lambda gen: int(gen.integers(0, 10**9)), trials=3, seed=1)
        b = run_many(lambda gen: int(gen.integers(0, 10**9)), trials=3, seed=1)
        assert a == b
