"""Tests for experiment statistics helpers."""

import numpy as np
import pytest

from repro.experiments.stats import (
    binomial_confidence,
    boxplot_stats,
    geometric_space,
)


class TestBoxplotStats:
    def test_simple_sample(self):
        stats = boxplot_stats([1, 2, 3, 4, 5])
        assert stats.median == 3
        assert stats.q1 == 2
        assert stats.q3 == 4
        assert stats.count == 5
        assert stats.mean == 3
        assert stats.outliers == []

    def test_outlier_detection(self):
        values = [10, 11, 12, 13, 14, 100]
        stats = boxplot_stats(values)
        assert 100 in stats.outliers
        assert stats.whisker_high <= 14

    def test_whiskers_within_data(self):
        gen = np.random.default_rng(0)
        values = gen.normal(50, 5, size=200)
        stats = boxplot_stats(values)
        assert values.min() <= stats.whisker_low <= stats.q1
        assert stats.q3 <= stats.whisker_high <= values.max()

    def test_single_value(self):
        stats = boxplot_stats([7.0])
        assert stats.median == 7.0
        assert stats.iqr == 0.0
        assert stats.whisker_low == stats.whisker_high == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            boxplot_stats([])

    def test_as_dict_roundtrip(self):
        stats = boxplot_stats([1, 2, 3])
        d = stats.as_dict()
        assert d["median"] == 2
        assert isinstance(d["outliers"], list)


class TestBinomialConfidence:
    def test_contains_point_estimate(self):
        lo, hi = binomial_confidence(50, 100)
        assert lo < 0.5 < hi

    def test_extreme_zero(self):
        lo, hi = binomial_confidence(0, 100)
        assert lo == 0.0
        assert hi < 0.1

    def test_extreme_all(self):
        lo, hi = binomial_confidence(100, 100)
        assert hi == 1.0
        assert lo > 0.9

    def test_narrower_with_more_trials(self):
        lo1, hi1 = binomial_confidence(5, 10)
        lo2, hi2 = binomial_confidence(500, 1000)
        assert (hi2 - lo2) < (hi1 - lo1)

    def test_invalid(self):
        with pytest.raises(ValueError):
            binomial_confidence(5, 0)
        with pytest.raises(ValueError):
            binomial_confidence(11, 10)


class TestGeometricSpace:
    def test_endpoints(self):
        grid = geometric_space(100, 10_000, 5)
        assert grid[0] == 100
        assert grid[-1] == 10_000

    def test_strictly_increasing(self):
        grid = geometric_space(10, 100_000, 20)
        assert all(b > a for a, b in zip(grid, grid[1:]))

    def test_dedup_small_range(self):
        grid = geometric_space(2, 4, 10)
        assert grid == sorted(set(grid))

    def test_single_point(self):
        assert geometric_space(50, 50, 1) == [50]

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_space(0, 10, 3)
        with pytest.raises(ValueError):
            geometric_space(10, 5, 3)
        with pytest.raises(ValueError):
            geometric_space(1, 10, 0)
