"""Fault-scenario sweep cells: wiring, validation, and bit-identity.

PR 8's acceptance contract: a corrupted-measurement or message-drop
sweep cell produces bit-identical results on the serial, process
(any worker count), and socket backends — every fault realization is a
pure function of the trial's child seed, drawn from a dedicated stream
(:mod:`repro.core.corruption`), so no backend or chunk layout can
perturb it. Also covers the scheduler's spec validation, the folded
network-metrics meta, the ``twostage`` required-m path, and the
FaultModel determinism regression (an unseeded faulty model is now an
error, not an irreproducible run).
"""

import numpy as np
import pytest

import repro
from repro.core.corruption import CorruptionModel, FaultSpec
from repro.distributed.network import FaultModel
from repro.experiments import parallel
from repro.experiments.runner import (
    REQUIRED_QUERIES_ALGORITHMS,
    required_queries_trials,
    success_rate_curve,
)
from repro.experiments.scheduler import SweepPlan


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    parallel.shutdown_pool()


@pytest.fixture(scope="module")
def socket_hosts():
    """Two live localhost socket workers (the cross-host round trip)."""
    from repro.experiments.worker import start_local_workers

    hosts, shutdown = start_local_workers(2)
    assert len(hosts) == 2
    yield hosts
    shutdown()


def build_faulty_plan() -> SweepPlan:
    """One cell per fault axis (mirrors benchmarks/smoke_fault_sweep.py)."""
    plan = SweepPlan()
    plan.add_success_curve(
        50, 3, repro.ZChannel(0.1), [30, 60], trials=6, seed=123,
        corruption=CorruptionModel(flip_rate=0.1),
    )
    plan.add_success_curve(
        40, 3, repro.ZChannel(0.1), [30], algorithm="distributed",
        trials=4, seed=124, fault=FaultSpec(drop=0.2, delay=0.1, max_delay=2),
    )
    plan.add_required_queries(
        60, 3, repro.ZChannel(0.1), trials=4, seed=125, check_every=10,
        corruption=CorruptionModel(erasure_rate=0.1),
    )
    plan.add_required_queries(
        60, 3, repro.ZChannel(0.1), trials=3, seed=126, check_every=10,
        algorithm="twostage",
    )
    return plan


class TestBitIdentity:
    @pytest.fixture(scope="class")
    def serial_results(self):
        return build_faulty_plan().run(backend="serial")

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_process_backend_matches_for_any_worker_count(
        self, serial_results, workers
    ):
        results = build_faulty_plan().run(backend="process", workers=workers)
        assert repr(results) == repr(serial_results)

    def test_socket_backend_round_trip(self, serial_results, socket_hosts):
        results = build_faulty_plan().run(
            backend="socket", hosts=socket_hosts
        )
        assert repr(results) == repr(serial_results)

    def test_plans_are_reusable(self):
        plan = build_faulty_plan()
        assert repr(plan.run(backend="serial")) == repr(
            plan.run(backend="serial")
        )

    def test_null_corruption_equals_no_corruption(self):
        # The null model is the same cell as no corruption at all: it
        # routes through the identical (batched) path and folds the
        # identical result, with no corruption label in the meta.
        null = success_rate_curve(
            50, 3, repro.ZChannel(0.1), [40], trials=5, seed=9,
            corruption=CorruptionModel(),
        )
        plain = success_rate_curve(
            50, 3, repro.ZChannel(0.1), [40], trials=5, seed=9
        )
        assert repr(null) == repr(plain)
        assert "corruption" not in null.meta


class TestSchedulerValidation:
    def test_corruption_must_be_a_corruption_model(self):
        plan = SweepPlan()
        with pytest.raises(TypeError, match="CorruptionModel"):
            plan.add_success_curve(
                50, 3, repro.ZChannel(0.1), [30], corruption=0.3
            )
        with pytest.raises(TypeError, match="CorruptionModel"):
            plan.add_required_queries(
                50, 3, repro.ZChannel(0.1), corruption={"flip_rate": 0.3}
            )

    def test_fault_must_be_a_fault_spec(self):
        plan = SweepPlan()
        with pytest.raises(TypeError, match="FaultSpec"):
            plan.add_success_curve(
                40, 3, repro.ZChannel(0.1), [30], algorithm="distributed",
                fault=0.2,
            )

    def test_fault_requires_the_distributed_algorithm(self):
        plan = SweepPlan()
        with pytest.raises(ValueError, match="no network"):
            plan.add_success_curve(
                40, 3, repro.ZChannel(0.1), [30], algorithm="greedy",
                fault=FaultSpec(drop=0.2),
            )

    def test_corruption_rejects_explicit_batch_mode(self):
        plan = SweepPlan()
        with pytest.raises(ValueError, match="batch"):
            plan.add_success_curve(
                50, 3, repro.ZChannel(0.1), [30], batch_mode="greedy",
                corruption=CorruptionModel(flip_rate=0.1),
            )


class TestFoldedMeta:
    def test_distributed_curve_carries_network_metrics(self):
        curve = success_rate_curve(
            40, 3, repro.ZChannel(0.1), [20, 30], algorithm="distributed",
            trials=3, seed=6,
        )
        assert len(curve.meta["metrics"]) == 2
        for per_m in curve.meta["metrics"]:
            assert {"rounds", "messages", "bits", "dropped", "delayed"} <= set(
                per_m
            )
            assert per_m["dropped"] == 0.0  # no fault spec, reliable links

    def test_faulty_distributed_curve_counts_drops(self):
        curve = success_rate_curve(
            40, 3, repro.ZChannel(0.1), [30], algorithm="distributed",
            trials=3, seed=6, fault=FaultSpec(drop=0.3),
        )
        assert curve.meta["fault"] == "fault(drop=0.3)"
        assert curve.meta["metrics"][0]["dropped"] > 0

    def test_distributed_amp_curve_carries_metrics(self):
        curve = success_rate_curve(
            60, 3, repro.ZChannel(0.1), [40], algorithm="distributed_amp",
            trials=2, seed=4,
        )
        assert {"rounds", "messages", "bits"} <= set(curve.meta["metrics"][0])

    def test_corrupted_curve_is_labelled(self):
        curve = success_rate_curve(
            50, 3, repro.ZChannel(0.1), [30], trials=3, seed=2,
            corruption=CorruptionModel(erasure_rate=0.2),
        )
        assert curve.meta["corruption"] == "corruption(erase=0.2)"

    def test_plain_curves_keep_empty_meta(self):
        curve = success_rate_curve(
            50, 3, repro.ZChannel(0.1), [30], trials=3, seed=2
        )
        assert curve.meta == {}


class TestTwoStageRequiredQueries:
    def test_twostage_is_a_required_queries_algorithm(self):
        assert "twostage" in REQUIRED_QUERIES_ALGORITHMS

    def test_engines_agree(self):
        kwargs = dict(trials=3, seed=5, check_every=10, max_m=200)
        batch = required_queries_trials(
            80, 3, repro.ZChannel(0.1), algorithm="twostage",
            engine="batch", **kwargs,
        )
        legacy = required_queries_trials(
            80, 3, repro.ZChannel(0.1), algorithm="twostage",
            engine="legacy", **kwargs,
        )
        assert batch.values == legacy.values
        assert batch.algorithm == "twostage"

    def test_values_sit_on_the_check_grid(self):
        sample = required_queries_trials(
            80, 3, repro.ZChannel(0.1), algorithm="twostage",
            trials=4, seed=5, check_every=10,
        )
        assert sample.values and all(v % 10 == 0 for v in sample.values)

    def test_corrupted_scan_matches_singleton_replay(self):
        # The prefix-replay contract: the corrupted scan's stopping m
        # is the smallest checked prefix of ONE full-stream corruption
        # realization that decodes exactly — so re-running with the
        # same seeds must reproduce it, and a harder corruption of the
        # same trials can only move the stopping m (never the trial
        # count or the grid).
        kwargs = dict(trials=4, seed=7, check_every=10, max_m=200)
        mild = required_queries_trials(
            80, 3, repro.ZChannel(0.1),
            corruption=CorruptionModel(erasure_rate=0.05), **kwargs,
        )
        again = required_queries_trials(
            80, 3, repro.ZChannel(0.1),
            corruption=CorruptionModel(erasure_rate=0.05), **kwargs,
        )
        assert mild.values == again.values
        assert all(v % 10 == 0 for v in mild.values)


class TestFaultModelDeterminism:
    """Satellite 1: rng=None with positive rates is now an error."""

    def test_unseeded_faulty_model_is_rejected(self):
        with pytest.raises(ValueError, match="rng"):
            FaultModel(drop_probability=0.1)
        with pytest.raises(ValueError, match="rng"):
            FaultModel(delay_probability=0.1, max_delay=2)

    def test_zero_seed_is_a_valid_rng(self):
        assert FaultModel(drop_probability=0.1, rng=0) is not None

    def test_null_model_needs_no_rng(self):
        assert FaultModel() is not None

    def test_rate_validation_still_fires_first(self):
        with pytest.raises(ValueError, match="drop_probability"):
            FaultModel(drop_probability=1.5)

    def test_identically_seeded_faulty_runs_are_repr_identical(self):
        def run():
            return success_rate_curve(
                40, 3, repro.ZChannel(0.1), [25, 35],
                algorithm="distributed", trials=4, seed=31,
                fault=FaultSpec(drop=0.3, delay=0.2, max_delay=3),
            )

        first, second = run(), run()
        assert repr(first) == repr(second)
        assert first.meta == second.meta
        assert first.meta["metrics"][0]["dropped"] > 0
