"""Failure-injection tests: lossy/delaying networks and protocol robustness."""

import numpy as np
import pytest

import repro
from repro.distributed import FaultModel, run_distributed_algorithm1
from repro.distributed.messages import (
    QueryResultMessage,
    RankAnnouncementMessage,
    SortKeyMessage,
)
from repro.distributed.network import Network, Node


class Sender(Node):
    def __init__(self, name, target, count):
        super().__init__(name)
        self.target = target
        self.remaining = count

    def on_round(self, round_no, inbox, net):
        while self.remaining > 0:
            net.send(self.name, self.target, RankAnnouncementMessage(agent_id=0))
            self.remaining -= 1

    def is_idle(self):
        return self.remaining == 0


class Receiver(Node):
    def __init__(self, name):
        super().__init__(name)
        self.got = 0

    def on_round(self, round_no, inbox, net):
        self.got += len(inbox)


class TestFaultModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultModel(drop_probability=1.5)
        with pytest.raises(ValueError):
            FaultModel(delay_probability=0.5)  # needs max_delay
        with pytest.raises(ValueError):
            FaultModel(max_delay=-1)

    def test_drop_all(self):
        fm = FaultModel(drop_probability=1.0, rng=0)
        env_like = type("E", (), {"payload": RankAnnouncementMessage(0)})()
        assert fm.route(env_like) is None

    def test_no_faults_is_transparent(self):
        fm = FaultModel(rng=0)
        env_like = type("E", (), {"payload": RankAnnouncementMessage(0)})()
        assert fm.route(env_like) == 0

    def test_affected_types_filter(self):
        fm = FaultModel(
            drop_probability=1.0,
            affected_types=(QueryResultMessage,),
            rng=0,
        )
        other = type("E", (), {"payload": SortKeyMessage(0, (0.0, 1))})()
        assert fm.route(other) == 0  # untouched
        query = type("E", (), {"payload": QueryResultMessage(0, 1.0)})()
        assert fm.route(query) is None


class TestLossyNetwork:
    def test_all_dropped(self):
        net = Network(fault_model=FaultModel(drop_probability=1.0, rng=1))
        net.add_node(Sender("s", "r", 10))
        net.add_node(Receiver("r"))
        net.run()
        assert net.node("r").got == 0
        assert net.metrics.dropped == 10

    def test_partial_drop_statistics(self):
        net = Network(fault_model=FaultModel(drop_probability=0.5, rng=2))
        net.add_node(Sender("s", "r", 400))
        net.add_node(Receiver("r"))
        net.run()
        received = net.node("r").got
        assert received + net.metrics.dropped == 400
        assert 120 < received < 280  # ~Binomial(400, 0.5)

    def test_delayed_delivery_eventually_arrives(self):
        net = Network(
            fault_model=FaultModel(delay_probability=1.0, max_delay=3, rng=3)
        )
        net.add_node(Sender("s", "r", 20))
        net.add_node(Receiver("r"))
        net.run()
        assert net.node("r").got == 20
        assert net.metrics.delayed == 20

    def test_pending_includes_in_flight(self):
        net = Network(
            fault_model=FaultModel(delay_probability=1.0, max_delay=5, rng=4)
        )
        net.add_node(Sender("s", "r", 1))
        net.add_node(Receiver("r"))
        net.run_round()  # message now in flight, delayed
        assert net.has_pending_messages()


class TestProtocolUnderFaults:
    def _measurements(self, seed=0, n=64, k=4, m=120):
        gen = np.random.default_rng(seed)
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        return repro.measure(graph, truth, repro.ZChannel(0.1), gen)

    def test_unrestricted_fault_model_rejected(self):
        meas = self._measurements()
        with pytest.raises(ValueError):
            run_distributed_algorithm1(
                meas, fault_model=FaultModel(drop_probability=0.1, rng=0)
            )

    def test_protocol_survives_query_drops(self):
        meas = self._measurements(m=200)
        fm = FaultModel(
            drop_probability=0.3,
            affected_types=(QueryResultMessage,),
            rng=5,
        )
        report = run_distributed_algorithm1(meas, fault_model=fm)
        assert report.result.estimate.sum() == meas.k
        assert report.result.meta["dropped"] > 0
        # With 30% losses but 2x the necessary queries the protocol
        # should still reconstruct well.
        assert report.result.overlap >= 0.75

    def test_delayed_query_results_discarded_not_fatal(self):
        meas = self._measurements(m=100)
        fm = FaultModel(
            delay_probability=0.4,
            max_delay=2,
            affected_types=(QueryResultMessage,),
            rng=6,
        )
        report = run_distributed_algorithm1(meas, fault_model=fm)
        assert report.result.meta["late_results_ignored"] > 0
        assert report.result.estimate.sum() == meas.k

    def test_drop_rate_degrades_gracefully(self):
        """More drops -> (weakly) worse reconstruction, never a crash."""
        overlaps = []
        for drop in (0.0, 0.5, 0.9):
            fm = FaultModel(
                drop_probability=drop,
                affected_types=(QueryResultMessage,),
                rng=7,
            )
            meas = self._measurements(seed=1, m=150)
            report = run_distributed_algorithm1(meas, fault_model=fm)
            overlaps.append(report.result.overlap)
        assert overlaps[0] >= overlaps[2] - 0.05

    def test_no_faults_matches_vectorized(self):
        meas = self._measurements(seed=2)
        fm = FaultModel(
            drop_probability=0.0, affected_types=(QueryResultMessage,), rng=8
        )
        report = run_distributed_algorithm1(meas, fault_model=fm)
        vec = repro.greedy_reconstruct(meas)
        assert np.array_equal(report.result.estimate, vec.estimate)
