"""Unit tests for the vectorized greedy decoder (Algorithm 1)."""

import numpy as np
import pytest

import repro
from repro.core.greedy import greedy_reconstruct, run_greedy_trial


class TestGreedyReconstruct:
    def test_noiseless_easy_instance_recovers(self, small_instance):
        truth, _, meas = small_instance
        result = greedy_reconstruct(meas)
        assert result.exact
        assert result.overlap == 1.0
        assert np.array_equal(result.estimate, truth.sigma)

    def test_estimate_has_weight_k(self, z_instance):
        truth, _, meas = z_instance
        result = greedy_reconstruct(meas)
        assert result.estimate.sum() == truth.k

    def test_meta_fields(self, z_instance):
        truth, graph, meas = z_instance
        result = greedy_reconstruct(meas)
        assert result.meta["algorithm"] == "greedy"
        assert result.meta["n"] == truth.n
        assert result.meta["m"] == graph.m
        assert "z-channel" in result.meta["channel"]

    def test_exact_iff_zero_hamming(self, z_instance):
        _, _, meas = z_instance
        result = greedy_reconstruct(meas)
        assert result.exact == (result.hamming_errors == 0)

    def test_separated_implies_exact(self, rng):
        # Strict score separation forces the top-k set to equal the truth.
        for seed in range(10):
            gen = np.random.default_rng(seed)
            truth = repro.sample_ground_truth(150, 5, gen)
            graph = repro.sample_pooling_graph(150, 200, rng=gen)
            meas = repro.measure(graph, truth, repro.ZChannel(0.15), gen)
            result = greedy_reconstruct(meas)
            if result.separated:
                assert result.exact

    def test_centering_modes_agree_on_easy_instance(self, small_instance):
        _, _, meas = small_instance
        for mode in ("half_k", "oracle"):
            assert greedy_reconstruct(meas, centering=mode).exact

    def test_zero_queries_gives_some_estimate(self, rng):
        truth = repro.sample_ground_truth(20, 3, rng)
        graph = repro.sample_pooling_graph(20, 0, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        result = greedy_reconstruct(meas)
        assert result.estimate.sum() == 3
        assert not result.separated  # all scores are zero -> no separation

    def test_more_queries_help_statistically(self):
        # Success frequency with many queries should dominate few queries.
        few, many = 0, 0
        trials = 15
        for seed in range(trials):
            gen = np.random.default_rng(1000 + seed)
            truth = repro.sample_ground_truth(300, 6, gen)
            channel = repro.ZChannel(0.1)
            g_few = repro.sample_pooling_graph(300, 30, rng=gen)
            g_many = repro.sample_pooling_graph(300, 300, rng=gen)
            few += greedy_reconstruct(repro.measure(g_few, truth, channel, gen)).exact
            many += greedy_reconstruct(repro.measure(g_many, truth, channel, gen)).exact
        assert many >= few
        assert many >= trials - 2  # 300 queries is deep in the success phase


class TestRunGreedyTrial:
    def test_end_to_end(self, rng):
        result = run_greedy_trial(300, 6, 300, repro.ZChannel(0.1), rng)
        assert result.estimate.shape == (300,)
        assert result.meta["m"] == 300

    def test_with_provided_truth(self, rng):
        truth = repro.sample_ground_truth(100, 5, rng)
        result = run_greedy_trial(100, 5, 150, repro.NoiselessChannel(), rng, truth=truth)
        assert result.exact

    def test_truth_mismatch_rejected(self, rng):
        truth = repro.sample_ground_truth(100, 5, rng)
        with pytest.raises(ValueError):
            run_greedy_trial(100, 6, 10, repro.NoiselessChannel(), rng, truth=truth)

    def test_determinism(self):
        a = run_greedy_trial(200, 5, 100, repro.ZChannel(0.1), 42)
        b = run_greedy_trial(200, 5, 100, repro.ZChannel(0.1), 42)
        assert np.array_equal(a.estimate, b.estimate)
        assert np.allclose(a.scores, b.scores)
