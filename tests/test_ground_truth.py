"""Unit tests for repro.core.ground_truth."""

import numpy as np
import pytest

from repro.core.ground_truth import (
    GroundTruth,
    linear_k,
    regime_k,
    sample_ground_truth,
    sample_linear,
    sample_sublinear,
    sublinear_k,
)


class TestRegimeK:
    def test_sublinear_matches_power(self):
        assert sublinear_k(10_000, 0.25) == 10
        assert sublinear_k(100_000, 0.25) == round(100_000**0.25)

    def test_sublinear_at_least_one(self):
        assert sublinear_k(2, 0.01) == 1

    def test_sublinear_never_exceeds_n(self):
        assert sublinear_k(3, 0.99) <= 3

    def test_linear_rounding(self):
        assert linear_k(1000, 0.1) == 100
        assert linear_k(10, 0.25) == 2  # round(2.5) banker's -> 2

    def test_linear_at_least_one(self):
        assert linear_k(3, 0.01) == 1

    def test_regime_dispatch_sublinear(self):
        assert regime_k(10_000, theta=0.25) == sublinear_k(10_000, 0.25)

    def test_regime_dispatch_linear(self):
        assert regime_k(1000, zeta=0.2) == linear_k(1000, 0.2)

    def test_regime_requires_exactly_one(self):
        with pytest.raises(ValueError):
            regime_k(100)
        with pytest.raises(ValueError):
            regime_k(100, theta=0.5, zeta=0.5)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 1.5])
    def test_invalid_theta_rejected(self, bad):
        with pytest.raises(ValueError):
            sublinear_k(100, bad)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.1, 2.0])
    def test_invalid_zeta_rejected(self, bad):
        with pytest.raises(ValueError):
            linear_k(100, bad)

    def test_invalid_n_rejected(self):
        with pytest.raises(ValueError):
            sublinear_k(0, 0.5)
        with pytest.raises(TypeError):
            sublinear_k(10.5, 0.5)


class TestGroundTruth:
    def test_sample_weight(self, rng):
        truth = sample_ground_truth(500, 42, rng)
        assert truth.n == 500
        assert truth.k == 42
        assert truth.sigma.sum() == 42

    def test_sample_zero_k(self, rng):
        truth = sample_ground_truth(10, 0, rng)
        assert truth.k == 0
        assert truth.sigma.sum() == 0

    def test_sample_full_k(self, rng):
        truth = sample_ground_truth(10, 10, rng)
        assert truth.k == 10

    def test_k_exceeding_n_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_ground_truth(10, 11, rng)

    def test_ones_zeros_partition(self, rng):
        truth = sample_ground_truth(100, 30, rng)
        ones = set(truth.ones.tolist())
        zeros = set(truth.zeros.tolist())
        assert ones.isdisjoint(zeros)
        assert ones | zeros == set(range(100))
        assert len(ones) == 30

    def test_as_set(self, rng):
        truth = sample_ground_truth(50, 5, rng)
        assert truth.as_set() == frozenset(int(i) for i in truth.ones)

    def test_dtype_is_int8(self, rng):
        truth = sample_ground_truth(100, 10, rng)
        assert truth.sigma.dtype == np.int8

    def test_constructor_rejects_non_binary(self):
        with pytest.raises(ValueError):
            GroundTruth(np.array([0, 1, 2]))

    def test_constructor_rejects_2d(self):
        with pytest.raises(ValueError):
            GroundTruth(np.zeros((3, 3)))

    def test_constructor_accepts_float_binary(self):
        truth = GroundTruth(np.array([0.0, 1.0, 0.0]))
        assert truth.k == 1
        assert truth.sigma.dtype == np.int8

    def test_uniformity_of_support(self):
        # Each agent should be a 1-agent in roughly k/n of many samples.
        n, k, trials = 20, 5, 4000
        gen = np.random.default_rng(0)
        hits = np.zeros(n)
        for _ in range(trials):
            hits += sample_ground_truth(n, k, gen).sigma
        freq = hits / trials
        expected = k / n
        assert np.all(np.abs(freq - expected) < 0.05)

    def test_determinism_same_seed(self):
        a = sample_ground_truth(100, 10, 42)
        b = sample_ground_truth(100, 10, 42)
        assert np.array_equal(a.sigma, b.sigma)

    def test_different_seeds_differ(self):
        a = sample_ground_truth(1000, 100, 1)
        b = sample_ground_truth(1000, 100, 2)
        assert not np.array_equal(a.sigma, b.sigma)


class TestRegimeSamplers:
    def test_sample_sublinear(self, rng):
        truth = sample_sublinear(10_000, 0.25, rng)
        assert truth.k == sublinear_k(10_000, 0.25)

    def test_sample_linear(self, rng):
        truth = sample_linear(1000, 0.1, rng)
        assert truth.k == 100
