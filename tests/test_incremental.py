"""Unit tests for the incremental required-queries simulator."""

import numpy as np
import pytest

import repro
from repro.core.incremental import (
    IncrementalDecoder,
    default_max_queries,
    required_queries,
)


class TestIncrementalDecoder:
    def test_state_matches_batch_decoder(self, rng):
        # Streaming the same queries must produce the same scores as the
        # batch pipeline on the assembled graph.
        n, k = 150, 5
        truth = repro.sample_ground_truth(n, k, rng)
        dec = IncrementalDecoder(truth, repro.NoiselessChannel())
        results = [dec.add_query(rng) for _ in range(40)]

        # Rebuild psi/delta* from scratch using the recorded totals.
        assert dec.m == 40
        scores_expected = dec.psi - dec.delta_star * k / 2
        assert np.allclose(dec.scores, scores_expected)
        assert np.all(dec.delta_star <= dec.delta)
        assert dec.delta.sum() == 40 * dec.gamma
        assert len(results) == 40

    def test_noiseless_results_are_integers(self, rng):
        truth = repro.sample_ground_truth(100, 5, rng)
        dec = IncrementalDecoder(truth)
        r = dec.add_query(rng)
        assert r == int(r)

    def test_reconstruction_consistency(self, rng):
        truth = repro.sample_ground_truth(200, 5, rng)
        dec = IncrementalDecoder(truth, repro.ZChannel(0.1))
        for _ in range(200):
            dec.add_query(rng)
        rec = dec.reconstruction()
        assert rec.estimate.sum() == truth.k
        if dec.is_successful():
            assert rec.exact

    def test_separation_improves_with_queries(self, rng):
        truth = repro.sample_ground_truth(300, 6, rng)
        dec = IncrementalDecoder(truth, repro.NoiselessChannel())
        for _ in range(10):
            dec.add_query(rng)
        early = dec.separation()
        for _ in range(290):
            dec.add_query(rng)
        late = dec.separation()
        assert late > early

    def test_custom_gamma(self, rng):
        truth = repro.sample_ground_truth(100, 5, rng)
        dec = IncrementalDecoder(truth, gamma=10)
        dec.add_query(rng)
        assert dec.delta.sum() == 10


class TestIngestQuery:
    """The decode service's wire-fed entry point (PR 10, satellite 3)."""

    def _measured(self, n, gamma, channel, truth, rng, count):
        sigma = truth.sigma.astype(np.int64)
        queries = []
        for _ in range(count):
            agents, counts = repro.sample_query(n, gamma, rng)
            total = int(np.dot(counts, sigma[agents]))
            result = float(
                channel.measure(
                    np.asarray([total]), int(counts.sum()), rng
                )[0]
            )
            queries.append((agents, counts, result))
        return queries

    def test_matches_batch_greedy_scores(self, rng):
        # Streaming externally measured queries one at a time must land
        # on the same scores as the batch greedy pipeline on the
        # assembled graph — same accumulations, different order of
        # assembly.
        n, k, gamma = 120, 4, 60
        channel = repro.ZChannel(0.15)
        truth = repro.sample_ground_truth(n, k, rng)
        queries = self._measured(n, gamma, channel, truth, rng, 50)

        dec = IncrementalDecoder(truth, channel, gamma)
        builder = repro.PoolingGraphBuilder(n, gamma)
        results = []
        for agents, counts, result in queries:
            dec.ingest_query(agents, counts, result)
            builder.add_query(agents, counts)
            results.append(result)
        meas = repro.Measurements(
            graph=builder.build(),
            truth=truth,
            channel=channel,
            results=np.asarray(results),
        )
        batch = repro.greedy_reconstruct(meas)
        assert np.allclose(dec.scores, batch.scores)
        assert bool(dec.is_successful()) == bool(batch.separated)
        assert np.array_equal(dec.reconstruction().estimate, batch.estimate)

    def test_replay_then_append_is_pure(self, rng):
        # A decoder restored by replaying its first queries and then
        # grown further is bit-identical to one that never stopped —
        # the service's crash-recovery contract.
        n, k, gamma = 100, 3, 50
        channel = repro.GaussianQueryNoise(0.5)
        truth = repro.sample_ground_truth(n, k, rng)
        queries = self._measured(n, gamma, channel, truth, rng, 40)

        straight = IncrementalDecoder(truth, channel, gamma)
        for agents, counts, result in queries:
            straight.ingest_query(agents, counts, result)

        replayed = IncrementalDecoder(truth, channel, gamma)
        for agents, counts, result in queries[:23]:  # pre-crash prefix
            replayed.ingest_query(agents, counts, result)
        for agents, counts, result in queries[23:]:  # post-restart growth
            replayed.ingest_query(agents, counts, result)

        assert replayed.m == straight.m
        assert np.array_equal(replayed.scores, straight.scores)
        assert np.array_equal(replayed.psi, straight.psi)
        assert np.array_equal(replayed.delta_star, straight.delta_star)
        assert replayed.separation() == straight.separation()

    def test_ingest_matches_add_query(self, rng):
        # add_query == sample + measure + ingest_query on shared rng
        # state: the streaming entry point is the simulator's own path.
        n, k, gamma = 80, 3, 40
        truth = repro.sample_ground_truth(n, k, rng)
        channel = repro.ZChannel(0.1)
        seed = int(rng.integers(2**32))

        auto = IncrementalDecoder(truth, channel, gamma)
        gen = np.random.default_rng(seed)
        for _ in range(20):
            auto.add_query(gen)

        manual = IncrementalDecoder(truth, channel, gamma)
        gen = np.random.default_rng(seed)
        sigma = truth.sigma.astype(np.int64)
        for _ in range(20):
            agents, counts = repro.sample_query(n, gamma, gen)
            total = int(np.dot(counts, sigma[agents]))
            result = float(
                channel.measure(
                    np.asarray([total]), int(counts.sum()), gen
                )[0]
            )
            manual.ingest_query(agents, counts, result)

        assert np.array_equal(manual.scores, auto.scores)
        assert manual.separation() == auto.separation()


class TestRequiredQueries:
    def test_noiseless_succeeds(self):
        res = required_queries(200, 5, repro.NoiselessChannel(), rng=1)
        assert res.succeeded
        assert res.required_m is not None
        assert res.required_m >= 1

    def test_z_channel_succeeds(self):
        res = required_queries(200, 5, repro.ZChannel(0.1), rng=2)
        assert res.succeeded

    def test_noisier_needs_more_queries_on_average(self):
        # Averaged over seeds, p=0.4 requires at least as many queries as p=0.
        m_clean, m_noisy = [], []
        for seed in range(8):
            clean = required_queries(300, 5, repro.NoiselessChannel(), rng=seed)
            noisy = required_queries(300, 5, repro.ZChannel(0.4), rng=seed)
            assert clean.succeeded and noisy.succeeded
            m_clean.append(clean.required_m)
            m_noisy.append(noisy.required_m)
        assert np.mean(m_noisy) > np.mean(m_clean)

    def test_budget_exhaustion_reports_failure(self):
        res = required_queries(200, 5, repro.ZChannel(0.1), rng=3, max_m=2)
        assert not res.succeeded
        assert res.required_m is None
        assert res.meta["max_m"] == 2

    def test_huge_gaussian_noise_fails_within_budget(self):
        # lambda^2 = Omega(m): Algorithm 1 should fail (Theorem 2, part 2).
        res = required_queries(
            100, 3, repro.GaussianQueryNoise(1000.0), rng=4, max_m=150
        )
        assert not res.succeeded

    def test_check_every_validation(self):
        with pytest.raises(ValueError):
            required_queries(100, 3, rng=5, check_every=0)

    def test_check_every_coarser_never_reports_smaller_m(self):
        fine = required_queries(200, 5, repro.NoiselessChannel(), rng=6, check_every=1)
        coarse = required_queries(200, 5, repro.NoiselessChannel(), rng=6, check_every=10)
        assert coarse.required_m >= fine.required_m
        assert coarse.required_m % 10 == 0

    def test_provided_truth_is_used(self, rng):
        truth = repro.sample_ground_truth(100, 4, rng)
        res = required_queries(100, 4, rng=rng, truth=truth)
        assert res.succeeded

    def test_determinism(self):
        a = required_queries(150, 4, repro.ZChannel(0.2), rng=9)
        b = required_queries(150, 4, repro.ZChannel(0.2), rng=9)
        assert a.required_m == b.required_m

    def test_default_budget_generous(self):
        assert default_max_queries(1000, 5) > 1000
