"""Cross-module integration tests.

These tests wire several subsystems together end-to-end and assert the
strong equivalences the design promises:

* streaming ingestion ≡ batch decoding on identical data;
* all four algorithm frontends agree where they must;
* the full figure pipeline produces internally consistent data;
* Theorem 1 thresholds separate the success/failure phases for every
  channel family.
"""

import numpy as np
import pytest

import repro
from repro.amp import run_amp
from repro.core.incremental import IncrementalDecoder
from repro.core.twostage import two_stage_reconstruct
from repro.distributed import run_distributed_algorithm1


class TestStreamingEqualsBatch:
    """IncrementalDecoder.ingest_query replays a graph bit-exactly."""

    @pytest.mark.parametrize(
        "channel",
        [
            repro.NoiselessChannel(),
            repro.ZChannel(0.2),
            repro.NoisyChannel(0.1, 0.05),
            repro.GaussianQueryNoise(1.0),
        ],
    )
    def test_ingest_matches_batch_scores(self, channel):
        gen = np.random.default_rng(42)
        n, k, m = 120, 4, 80
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        meas = repro.measure(graph, truth, channel, gen)

        decoder = IncrementalDecoder(truth, channel)
        for j in range(m):
            agents, counts = graph.query(j)
            decoder.ingest_query(agents, counts, float(meas.results[j]))

        batch_scores = repro.scores_from_measurements(meas)
        assert np.allclose(decoder.scores, batch_scores)
        assert np.array_equal(decoder.delta_star, graph.distinct_degrees())
        assert np.array_equal(decoder.delta, graph.multi_degrees())
        batch = repro.greedy_reconstruct(meas)
        streaming = decoder.reconstruction()
        assert np.array_equal(batch.estimate, streaming.estimate)

    def test_ingest_validates_input(self, rng):
        truth = repro.sample_ground_truth(10, 2, rng)
        decoder = IncrementalDecoder(truth)
        with pytest.raises(ValueError):
            decoder.ingest_query(np.array([11]), np.array([1]), 1.0)
        with pytest.raises(ValueError):
            decoder.ingest_query(np.array([1, 2]), np.array([1]), 1.0)


class TestAlgorithmFrontendsAgree:
    def test_all_algorithms_solve_easy_instance(self):
        gen = np.random.default_rng(7)
        n, k, m = 64, 3, 120
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        meas = repro.measure(graph, truth, repro.ZChannel(0.1), gen)

        greedy = repro.greedy_reconstruct(meas)
        dist = run_distributed_algorithm1(meas).result
        amp = run_amp(meas)
        two = two_stage_reconstruct(meas)
        assert greedy.exact and dist.exact and amp.exact and two.exact
        assert np.array_equal(greedy.estimate, dist.estimate)

    def test_amp_sparse_and_dense_paths_identical(self):
        gen = np.random.default_rng(8)
        truth = repro.sample_ground_truth(300, 5, gen)
        graph = repro.sample_pooling_graph(300, 120, rng=gen)
        for channel in (repro.ZChannel(0.1), repro.NoisyChannel(0.1, 0.02),
                        repro.GaussianQueryNoise(0.5)):
            meas = repro.measure(graph, truth, channel, gen)
            dense = run_amp(meas, sparse=False)
            sparse = run_amp(meas, sparse=True)
            assert np.allclose(dense.scores, sparse.scores)
            assert np.array_equal(dense.estimate, sparse.estimate)
            assert sparse.meta["sparse"] and not dense.meta["sparse"]

    def test_amp_sparse_by_default(self):
        gen = np.random.default_rng(9)
        truth = repro.sample_ground_truth(100, 3, gen)
        graph = repro.sample_pooling_graph(100, 20, rng=gen)
        meas = repro.measure(graph, truth, rng=gen)
        # Sparse is the default at every size; dense is opt-in only.
        assert run_amp(meas).meta["sparse"]
        assert not run_amp(meas, sparse=False).meta["sparse"]


class TestPhaseConsistency:
    """Theorem 1 separates success from failure for every channel."""

    @pytest.mark.parametrize(
        "channel,bound_kwargs",
        [
            (repro.ZChannel(0.1), dict(p=0.1, q=0.0)),
            (repro.NoisyChannel(0.1, 0.02), dict(p=0.1, q=0.02)),
        ],
    )
    def test_above_bound_succeeds_below_fails(self, channel, bound_kwargs):
        n, theta = 500, 0.25
        k = repro.sublinear_k(n, theta)
        bound = repro.theorem1_bound(n, theta=theta, **bound_kwargs)
        wins_hi = wins_lo = 0
        trials = 8
        for seed in range(trials):
            gen = np.random.default_rng(seed)
            truth = repro.sample_ground_truth(n, k, gen)
            g_hi = repro.sample_pooling_graph(n, int(2.0 * bound), rng=gen)
            g_lo = repro.sample_pooling_graph(n, max(1, int(0.1 * bound)), rng=gen)
            meas_hi = repro.measure(g_hi, truth, channel, gen)
            meas_lo = repro.measure(g_lo, truth, channel, gen)
            centering = "oracle" if bound_kwargs["q"] > 0 else "half_k"
            wins_hi += repro.greedy_reconstruct(meas_hi, centering=centering).exact
            wins_lo += repro.greedy_reconstruct(meas_lo, centering=centering).exact
        assert wins_hi >= trials - 1
        assert wins_lo <= 1

    def test_counting_bound_is_a_true_floor(self):
        # No run can ever succeed below the counting lower bound with
        # strict separation... statistically: the incremental procedure's
        # reported required_m should exceed the floor.
        n, k = 300, 5
        floor = repro.counting_lower_bound(n, k)
        res = repro.required_queries(n, k, repro.NoiselessChannel(), rng=3)
        assert res.succeeded
        assert res.required_m > floor


class TestFigurePipelineConsistency:
    def test_fig6_success_rates_consistent_with_direct_runs(self):
        from repro.experiments.figures import figure6
        from repro.experiments.runner import success_rate_curve

        result = figure6(
            n=150, ps=(0.1,), m_values=(120,), trials=6, seed=5,
            algorithms=("greedy",),
        )
        row = result.series("greedy p=0.1")[0]
        curve = success_rate_curve(
            150, repro.sublinear_k(150, 0.25), repro.ZChannel(0.1), [120],
            trials=6, seed=5,
        )
        assert row["success_rate"] == curve.success_rates[0]

    def test_cli_plot_smoke(self, capsys):
        from repro.cli import main

        rc = main([
            "fig2", "--trials", "1", "--n-min", "60", "--n-max", "120",
            "--n-points", "2", "--plot",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "o=p=0.1" in out
