"""AMP kernel seam: registry resolution, golden bit-identity, float32.

The contract under test (see :mod:`repro.amp.kernels`): the default
float64 NumPy kernel performs exactly the array operations the
pre-seam AMP loops performed, in the same order — so every AMP entry
point's float64 output is **bit-identical** to the pre-refactor
implementation. The golden hashes below were captured by running the
pre-seam code on the pinned instances; the seam must keep reproducing
them exactly, for the standalone runner, the block-diagonal batched
runner, and the ragged required-m scan in every verify mode. The
float32 kernels are opt-in and tolerance-tested; the numba kernels
fall back to the matching NumPy kernel (with one warning) when numba
is not installed.
"""

import hashlib
import warnings

import numpy as np
import pytest

import repro
from repro.amp import AMPConfig, run_amp
from repro.amp.batch_amp import required_queries_amp, run_amp_trials
from repro.amp.kernels import (
    KERNEL_ENV,
    KERNELS,
    AMPKernel,
    StackLayout,
    cupy_available,
    numba_available,
    resolve_kernel,
)
from repro.amp import kernels as kernels_module
from repro.utils.rng import spawn_seeds


def _hash(arr):
    return hashlib.sha256(np.ascontiguousarray(arr).tobytes()).hexdigest()[:16]


def _standalone_instance(seed=42, n=600, k=5, m=80, channel=None):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph_batch(n, m, rng=gen)
    meas = repro.measure(graph, truth, channel or repro.ZChannel(0.1), gen)
    return meas


# -- registry / resolution ----------------------------------------------


def test_default_kernel_is_float64_numpy(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    kern = resolve_kernel()
    assert kern.name == "numpy"
    assert kern.dtype == np.float64


def test_named_kernels_resolve():
    assert resolve_kernel("numpy").dtype == np.float64
    kern32 = resolve_kernel("numpy32")
    assert kern32.name == "numpy32"
    assert kern32.dtype == np.float32


def test_unknown_kernel_name_rejected():
    with pytest.raises(ValueError, match="unknown AMP kernel"):
        resolve_kernel("fortran")


def test_instance_passes_through():
    kern = AMPKernel(np.float32, "custom")
    assert resolve_kernel(kern) is kern


def test_env_selection_and_precedence(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "numpy32")
    assert resolve_kernel().name == "numpy32"
    # An explicit name always beats the environment.
    assert resolve_kernel("numpy").name == "numpy"
    monkeypatch.setenv(KERNEL_ENV, "")
    assert resolve_kernel().name == "numpy"


def test_resolved_kernels_are_cached():
    assert resolve_kernel("numpy") is resolve_kernel("numpy")


@pytest.mark.skipif(numba_available(), reason="numba installed: no fallback")
def test_numba_fallback_warns_once_and_keeps_precision(monkeypatch):
    monkeypatch.setattr(kernels_module, "_fallback_warned", {})
    for name in ("numba", "numba32"):
        kernels_module._kernel_cache.pop(name, None)
    with pytest.warns(RuntimeWarning, match="falling back") as caught:
        kern = resolve_kernel("numba")
    assert kern.name == "numpy"
    assert kern.dtype == np.float64
    # The warning names both the requested backend and the precision
    # actually substituted.
    assert "numba -> numpy" in str(caught[0].message)
    # Warn-once: the second numba-family request resolves silently,
    # and a float32 request degrades to the float32 NumPy kernel.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        kern32 = resolve_kernel("numba32")
    assert kern32.name == "numpy32"
    assert kern32.dtype == np.float32


@pytest.mark.skipif(cupy_available(), reason="cupy installed: no fallback")
def test_cupy_fallback_warns_once_and_keeps_precision(monkeypatch):
    monkeypatch.setattr(kernels_module, "_fallback_warned", {})
    for name in ("cupy", "cupy32"):
        kernels_module._kernel_cache.pop(name, None)
    with pytest.warns(RuntimeWarning, match="falling back") as caught:
        kern32 = resolve_kernel("cupy32")
    assert kern32.name == "numpy32"
    assert kern32.dtype == np.float32
    assert "cupy32 -> numpy32" in str(caught[0].message)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        kern = resolve_kernel("cupy")
    assert kern.name == "numpy"
    assert kern.dtype == np.float64


@pytest.mark.skipif(cupy_available(), reason="cupy installed: no fallback")
def test_cupy_fallback_warns_even_after_numba_fallback(monkeypatch):
    # The warn-once flag is per accelerator family: a numba fallback
    # must not swallow the first cupy fallback's warning.
    monkeypatch.setattr(kernels_module, "_fallback_warned", {"numba": True})
    kernels_module._kernel_cache.pop("cupy", None)
    with pytest.warns(RuntimeWarning, match="cupy"):
        resolve_kernel("cupy")


@pytest.mark.skipif(cupy_available(), reason="cupy installed: no fallback")
def test_cupy_fallback_runs_the_golden_pins(monkeypatch):
    # A cupy request without cupy must keep every decode unchanged:
    # the substituted kernel is the bit-identical NumPy reference.
    monkeypatch.setattr(kernels_module, "_fallback_warned", {})
    kernels_module._kernel_cache.pop("cupy", None)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        result = run_amp(_standalone_instance(), kernel="cupy")
    assert _hash(result.scores) == GOLDEN_STANDALONE
    assert result.meta["kernel"] == "numpy"


def test_registry_names_all_resolve():
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        for name in KERNELS:
            assert isinstance(resolve_kernel(name), AMPKernel)


# -- stack layout --------------------------------------------------------


def test_layout_uniform_bounds_and_scalars():
    layout = StackLayout.for_uniform(3, 10, 4, np.float64)
    assert layout.uniform
    np.testing.assert_array_equal(layout.bounds, [0, 4, 8, 12])
    assert layout.sqrt_m == np.sqrt(4)
    assert layout.nm_ratio == 10 / 4
    np.testing.assert_array_equal(layout.per_row(layout.sqrt_m), [2.0] * 3)


def test_layout_ragged_restrict_slices_scalars():
    layout = StackLayout.for_ragged(6, np.array([2, 3, 4]), np.float64)
    assert not layout.uniform
    np.testing.assert_array_equal(layout.bounds, [0, 2, 5, 9])
    active = np.array([True, False, True])
    sub = layout.restrict(active)
    assert sub.rows == 2
    np.testing.assert_array_equal(sub.m_cur, [2, 4])
    # Restriction slices the stored standardization vectors rather
    # than recomputing them (the pre-seam compaction behavior).
    np.testing.assert_array_equal(sub.sqrt_m, layout.sqrt_m[active])
    np.testing.assert_array_equal(sub.nm_ratio, layout.nm_ratio[active])


def test_layout_compact_and_restore_roundtrip():
    layout = StackLayout.for_ragged(4, np.array([2, 3, 1]), np.float64)
    z = np.arange(6, dtype=float)
    active = np.array([True, False, True])
    np.testing.assert_array_equal(
        layout.compact_measure(z, active), [0, 1, 5]
    )
    dst = np.zeros(6)
    layout.restore_rows(dst, z, ~active)
    np.testing.assert_array_equal(dst, [0, 0, 2, 3, 4, 0])


def test_layout_float32_scalars_stay_float32():
    layout = StackLayout.for_ragged(8, np.array([3, 5]), np.float32)
    assert layout.sqrt_m.dtype == np.float32
    assert layout.nm_ratio.dtype == np.float32
    assert np.dtype(type(layout.sqrt_n)) == np.float32


def test_segment_square_sums_matches_reference():
    kern = resolve_kernel("numpy")
    rng = np.random.default_rng(0)
    flat = rng.normal(size=9)
    layout = StackLayout.for_ragged(5, np.array([2, 3, 4]), np.float64)
    out = kern.segment_square_sums(flat, layout)
    expected = [np.sum(flat[a:b] ** 2) for a, b in ((0, 2), (2, 5), (5, 9))]
    np.testing.assert_allclose(out, expected)
    # Equal-length ragged segments take the reshape fast path; it must
    # agree with the generic per-segment reduction bit for bit.
    flat6 = rng.normal(size=6)
    eq = StackLayout.for_ragged(5, np.array([3, 3]), np.float64)
    np.testing.assert_array_equal(
        kern.segment_square_sums(flat6, eq),
        np.sum(flat6.reshape(2, 3) ** 2, axis=1),
    )


# -- golden bit-identity (pre-seam captures) -----------------------------

GOLDEN_STANDALONE = "1c6c1ee04112bce1"
GOLDEN_TRIALS = "581d0600ec6cbfc1"
GOLDEN_TRIALS_HAMMING = [2, 2, 0, 6, 4, 4]
GOLDEN_REQUIRED_M = [88, 40, 40, 32, 40]
GOLDEN_CHECKS = {
    "full": [13, 7, 7, 4, 7],
    "window": [9, 6, 6, 4, 6],
    "none": [8, 6, 6, 4, 6],
}
GOLDEN_GAUSS_DAMPED = "8a6dea18c59061fe"


@pytest.mark.parametrize("kernel", [None, "numpy"])
def test_golden_standalone_run_amp(kernel, monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    result = run_amp(_standalone_instance(), kernel=kernel)
    assert _hash(result.scores) == GOLDEN_STANDALONE
    assert result.meta["iterations"] == 4
    assert result.meta["kernel"] == "numpy"


def test_golden_batched_trials(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    results = run_amp_trials(
        512, 4, repro.ZChannel(0.1), 90, spawn_seeds(7, 6), gamma=32
    )
    stacked = np.vstack([r.scores for r in results])
    assert _hash(stacked) == GOLDEN_TRIALS
    assert [int(r.hamming_errors) for r in results] == GOLDEN_TRIALS_HAMMING


@pytest.mark.parametrize("verify", ["full", "window", "none"])
def test_golden_required_m_scan(verify, monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    results = required_queries_amp(
        256, 3, repro.ZChannel(0.1), spawn_seeds(11, 5),
        gamma=32, check_every=8, max_m=400, verify=verify,
    )
    assert [r.required_m for r in results] == GOLDEN_REQUIRED_M
    assert [r.checks for r in results] == GOLDEN_CHECKS[verify]


def test_golden_gaussian_damped(monkeypatch):
    monkeypatch.delenv(KERNEL_ENV, raising=False)
    meas = _standalone_instance(
        seed=5, n=400, k=4, m=70, channel=repro.GaussianQueryNoise(1.0)
    )
    result = run_amp(meas, config=AMPConfig(damping=0.2))
    assert _hash(result.scores) == GOLDEN_GAUSS_DAMPED
    assert result.meta["iterations"] == 10


def test_matvec_runs_inside_the_seam(monkeypatch):
    # The kernel phases own the matvec: spy on CSRStackOperator and
    # count operator applications during a run. One adjoint per
    # iteration, one forward per iteration (plus the initial
    # residual), and spying must not perturb the golden decode.
    from repro.amp.kernels import CSRStackOperator

    monkeypatch.delenv(KERNEL_ENV, raising=False)
    calls = {"matvec": 0, "rmatvec": 0}
    orig_matvec = CSRStackOperator.matvec
    orig_rmatvec = CSRStackOperator.rmatvec

    def spy_matvec(self, x):
        calls["matvec"] += 1
        return orig_matvec(self, x)

    def spy_rmatvec(self, z):
        calls["rmatvec"] += 1
        return orig_rmatvec(self, z)

    monkeypatch.setattr(CSRStackOperator, "matvec", spy_matvec)
    monkeypatch.setattr(CSRStackOperator, "rmatvec", spy_rmatvec)
    result = run_amp(_standalone_instance())
    iterations = result.meta["iterations"]
    assert _hash(result.scores) == GOLDEN_STANDALONE
    assert calls["rmatvec"] >= iterations > 0
    assert calls["matvec"] >= iterations > 0


def test_env_kernel_reaches_run_amp(monkeypatch):
    monkeypatch.setenv(KERNEL_ENV, "numpy32")
    result = run_amp(_standalone_instance())
    assert result.meta["kernel"] == "numpy32"
    assert result.scores.dtype == np.float32


# -- float32 opt-in (tolerance, not bit-identity) ------------------------


def test_float32_standalone_close_to_reference():
    ref = run_amp(_standalone_instance(), kernel="numpy")
    f32 = run_amp(_standalone_instance(), kernel="numpy32")
    assert f32.scores.dtype == np.float32
    assert f32.meta["kernel"] == "numpy32"
    assert np.max(np.abs(ref.scores - f32.scores)) < 5e-6
    np.testing.assert_array_equal(ref.estimate, f32.estimate)


def test_float32_batched_close_to_reference():
    ref = run_amp_trials(
        512, 4, repro.ZChannel(0.1), 90, spawn_seeds(7, 6), gamma=32
    )
    f32 = run_amp_trials(
        512, 4, repro.ZChannel(0.1), 90, spawn_seeds(7, 6), gamma=32,
        kernel="numpy32",
    )
    for a, b in zip(ref, f32):
        assert b.scores.dtype == np.float32
        assert np.max(np.abs(a.scores - b.scores)) < 5e-5


def test_float32_required_m_matches_on_pinned_instance():
    f32 = required_queries_amp(
        256, 3, repro.ZChannel(0.1), spawn_seeds(11, 5),
        gamma=32, check_every=8, max_m=400, kernel="numpy32",
    )
    assert [r.required_m for r in f32] == GOLDEN_REQUIRED_M


# -- numba backend (tolerance-equivalence when installed) ----------------


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
def test_numba_kernel_close_to_reference():
    ref = run_amp(_standalone_instance(), kernel="numpy")
    fused = run_amp(_standalone_instance(), kernel="numba")
    assert fused.meta["kernel"] == "numba"
    assert np.max(np.abs(ref.scores - fused.scores)) < 1e-9
    np.testing.assert_array_equal(ref.estimate, fused.estimate)


@pytest.mark.skipif(not numba_available(), reason="numba not installed")
def test_numba_required_m_matches_reference():
    fused = required_queries_amp(
        256, 3, repro.ZChannel(0.1), spawn_seeds(11, 5),
        gamma=32, check_every=8, max_m=400, kernel="numba",
    )
    assert [r.required_m for r in fused] == GOLDEN_REQUIRED_M
