"""Unit tests for repro.core.measurement."""

import numpy as np
import pytest

import repro
from repro.core.measurement import Measurements, measure, measure_query


class TestMeasure:
    def test_noiseless_results_are_exact_sums(self, small_instance):
        truth, graph, meas = small_instance
        assert np.array_equal(meas.results, graph.edges_into_ones(truth.sigma))

    def test_shapes_and_properties(self, small_instance):
        truth, graph, meas = small_instance
        assert meas.n == truth.n
        assert meas.m == graph.m
        assert meas.k == truth.k
        assert meas.results.shape == (graph.m,)

    def test_default_channel_is_noiseless(self, rng):
        truth = repro.sample_ground_truth(50, 5, rng)
        graph = repro.sample_pooling_graph(50, 10, rng=rng)
        meas = measure(graph, truth, rng=rng)
        assert isinstance(meas.channel, repro.NoiselessChannel)

    def test_mismatched_n_rejected(self, rng):
        truth = repro.sample_ground_truth(50, 5, rng)
        graph = repro.sample_pooling_graph(60, 10, rng=rng)
        with pytest.raises(ValueError):
            measure(graph, truth)

    def test_z_channel_only_lowers(self, rng):
        truth = repro.sample_ground_truth(100, 20, rng)
        graph = repro.sample_pooling_graph(100, 30, rng=rng)
        exact = graph.edges_into_ones(truth.sigma)
        noisy = measure(graph, truth, repro.ZChannel(0.3), rng).results
        assert np.all(noisy <= exact)
        assert np.all(noisy >= 0)

    def test_gaussian_results_are_floats(self, rng):
        truth = repro.sample_ground_truth(100, 20, rng)
        graph = repro.sample_pooling_graph(100, 30, rng=rng)
        noisy = measure(graph, truth, repro.GaussianQueryNoise(2.0), rng).results
        assert noisy.dtype == np.float64

    def test_determinism(self):
        truth = repro.sample_ground_truth(100, 20, 5)
        graph = repro.sample_pooling_graph(100, 30, rng=6)
        a = measure(graph, truth, repro.ZChannel(0.2), rng=7).results
        b = measure(graph, truth, repro.ZChannel(0.2), rng=7).results
        assert np.array_equal(a, b)

    def test_results_shape_validation(self, small_instance):
        truth, graph, _ = small_instance
        with pytest.raises(ValueError):
            Measurements(
                graph=graph,
                truth=truth,
                channel=repro.NoiselessChannel(),
                results=np.zeros(graph.m + 1),
            )


class TestMeasureQuery:
    def test_matches_graph_measurement_noiseless(self, rng):
        truth = repro.sample_ground_truth(100, 10, rng)
        graph = repro.sample_pooling_graph(100, 5, rng=rng)
        channel = repro.NoiselessChannel()
        for j in range(graph.m):
            agents, counts = graph.query(j)
            result = measure_query(agents, counts, truth.sigma, channel, graph.gamma, rng)
            assert result == graph.edges_into_ones(truth.sigma)[j]

    def test_gaussian_single_query(self, rng):
        truth = repro.sample_ground_truth(100, 10, rng)
        graph = repro.sample_pooling_graph(100, 1, rng=rng)
        agents, counts = graph.query(0)
        result = measure_query(
            agents, counts, truth.sigma, repro.GaussianQueryNoise(1.0), graph.gamma, rng
        )
        assert isinstance(result, float)

    def test_variable_size_query_uses_actual_edge_count(self, rng):
        # Regression: the noise law must be driven by counts.sum(), not
        # the nominal gamma. With q close to 1 almost every 0-edge reads
        # as 1, so a 3-edge query measured under a nominal gamma of
        # 1000 would report ~ Bin(1000, q) ~ 900 instead of <= 3.
        sigma = np.zeros(50, dtype=np.int8)
        agents = np.array([0])
        counts = np.array([3])
        channel = repro.NoisyChannel(0.0, 0.9)
        for _ in range(20):
            result = measure_query(agents, counts, sigma, channel, 1000, rng)
            assert 0 <= result <= 3

    def test_variable_size_matches_batch_measure(self, rng):
        # measure() and measure_query() must apply the same noise law on
        # the variable-size regular design.
        truth = repro.sample_ground_truth(60, 6, rng)
        graph = repro.sample_regular_design(60, 12, agent_degree=4, rng=rng)
        sizes = graph.query_sizes()
        assert sizes.min() != sizes.max()  # genuinely variable
        channel = repro.NoisyChannel(0.0, 1 - 1e-12)
        batch = measure(graph, truth, channel, rng).results
        # with q ~ 1 every 0-edge flips: results == sizes almost surely
        assert np.array_equal(batch, sizes)
        for j in range(graph.m):
            agents, counts = graph.query(j)
            result = measure_query(
                agents, counts, truth.sigma, channel, graph.gamma, rng
            )
            assert result == counts.sum()
