"""Tests for the synchronous message-passing network simulator."""

from typing import List

import pytest

from repro.distributed.messages import Envelope, RankAnnouncementMessage
from repro.distributed.network import Network, Node


class Echo(Node):
    """Test node: forwards every received announcement once to a target."""

    def __init__(self, name: str, target: str = None, hops: int = 0):
        super().__init__(name)
        self.target = target
        self.hops_left = hops
        self.received: List[Envelope] = []

    def on_round(self, round_no, inbox, net):
        self.received.extend(inbox)
        if self.hops_left > 0 and self.target is not None:
            net.send(self.name, self.target, RankAnnouncementMessage(agent_id=0))
            self.hops_left -= 1

    def is_idle(self):
        return self.hops_left == 0


class TestNetwork:
    def test_delivery_next_round(self):
        net = Network()
        a = Echo("a", target="b", hops=1)
        b = Echo("b")
        net.add_node(a)
        net.add_node(b)
        net.run_round()  # a sends
        assert b.received == []
        net.run_round()  # b receives
        assert len(b.received) == 1
        assert b.received[0].sender == "a"

    def test_duplicate_name_rejected(self):
        net = Network()
        net.add_node(Echo("a"))
        with pytest.raises(ValueError):
            net.add_node(Echo("a"))

    def test_unknown_recipient_rejected(self):
        net = Network()
        net.add_node(Echo("a", target="ghost", hops=1))
        with pytest.raises(KeyError):
            net.run_round()

    def test_run_until_quiescent(self):
        net = Network()
        net.add_node(Echo("a", target="b", hops=3))
        net.add_node(Echo("b"))
        rounds = net.run()
        assert rounds >= 4
        assert len(net.node("b").received) == 3

    def test_run_raises_on_livelock(self):
        class Chatter(Node):
            def on_round(self, round_no, inbox, net):
                net.send(self.name, self.name, RankAnnouncementMessage(agent_id=0))

        net = Network()
        net.add_node(Chatter("loop"))
        with pytest.raises(RuntimeError):
            net.run(max_rounds=10)

    def test_metrics(self):
        net = Network()
        net.add_node(Echo("a", target="b", hops=2))
        net.add_node(Echo("b"))
        net.run()
        assert net.metrics.messages == 2
        assert net.metrics.bits == 2 * 64
        assert sum(net.metrics.messages_per_round) == 2

    def test_node_names(self):
        net = Network()
        net.add_node(Echo("x"))
        net.add_node(Echo("y"))
        assert set(net.node_names) == {"x", "y"}
