"""Unit + statistical tests for repro.core.noise."""

import numpy as np
import pytest

from repro.core.noise import (
    GaussianQueryNoise,
    NoiselessChannel,
    NoisyChannel,
    ZChannel,
    effective_channel_regime,
    make_channel,
)


class TestNoiselessChannel:
    def test_identity(self, rng):
        ch = NoiselessChannel()
        e1 = np.array([0, 3, 7, 10])
        assert np.array_equal(ch.measure(e1, 10, rng), e1)

    def test_e1_out_of_range_rejected(self, rng):
        with pytest.raises(ValueError):
            NoiselessChannel().measure(np.array([11]), 10, rng)
        with pytest.raises(ValueError):
            NoiselessChannel().measure(np.array([-1]), 10, rng)

    def test_contributions(self, rng):
        ch = NoiselessChannel()
        out = ch.measure_contributions(np.array([2, 3]), np.array([1, 0]), rng)
        assert np.array_equal(out, np.array([2, 0]))

    def test_edge_mean(self):
        assert NoiselessChannel().edge_mean(0.3) == pytest.approx(0.3)

    def test_integer_valued(self):
        assert NoiselessChannel().integer_valued

    def test_no_query_level_noise(self, rng):
        assert NoiselessChannel().query_level_noise(rng) == 0.0


class TestNoisyChannel:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NoisyChannel(0.6, 0.5)  # p + q >= 1
        with pytest.raises(ValueError):
            NoisyChannel(1.0, 0.0)  # p must be < 1
        with pytest.raises(ValueError):
            NoisyChannel(-0.1, 0.0)
        with pytest.raises(TypeError):
            NoisyChannel("0.1", 0.0)

    def test_zero_noise_is_identity(self, rng):
        ch = NoisyChannel(0.0, 0.0)
        e1 = np.array([0, 5, 9])
        assert np.array_equal(ch.measure(e1, 9, rng), e1)

    def test_results_within_range(self, rng):
        ch = NoisyChannel(0.2, 0.1)
        results = ch.measure(np.full(100, 30), 60, rng)
        assert np.all(results >= 0)
        assert np.all(results <= 60)

    def test_e1_out_of_range_rejected(self, rng):
        ch = NoisyChannel(0.2, 0.1)
        with pytest.raises(ValueError):
            ch.measure(np.array([61]), 60, rng)
        with pytest.raises(ValueError):
            ch.measure(np.array([-1]), 60, rng)

    def test_measure_mean(self):
        # E[result] = e1 (1-p) + (gamma - e1) q
        gen = np.random.default_rng(11)
        p, q, e1, gamma, trials = 0.3, 0.05, 40, 100, 4000
        ch = NoisyChannel(p, q)
        samples = ch.measure(np.full(trials, e1), gamma, gen)
        expected = e1 * (1 - p) + (gamma - e1) * q
        assert abs(samples.mean() - expected) < 0.3

    def test_measure_variance(self):
        gen = np.random.default_rng(12)
        p, q, e1, gamma, trials = 0.3, 0.05, 40, 100, 20000
        ch = NoisyChannel(p, q)
        samples = ch.measure(np.full(trials, e1), gamma, gen)
        expected_var = e1 * (1 - p) * p + (gamma - e1) * q * (1 - q)
        assert abs(samples.var() - expected_var) < 0.08 * expected_var + 0.5

    def test_contributions_law(self):
        # Per-agent contributions ~ Bin(c, 1-p) for 1-agents, Bin(c, q) for 0.
        gen = np.random.default_rng(13)
        ch = NoisyChannel(0.25, 0.1)
        counts = np.array([10, 10])
        bits = np.array([1, 0])
        sums = np.zeros(2)
        trials = 3000
        for _ in range(trials):
            sums += ch.measure_contributions(counts, bits, gen)
        means = sums / trials
        assert abs(means[0] - 10 * 0.75) < 0.15
        assert abs(means[1] - 10 * 0.1) < 0.15

    def test_contributions_sum_law_matches_measure_law(self):
        # The sum of per-edge contributions must have the same law as
        # the aggregated measure() output.
        gen = np.random.default_rng(14)
        ch = NoisyChannel(0.2, 0.05)
        counts = np.array([3, 4, 5, 8])
        bits = np.array([1, 0, 1, 0])
        e1 = int(np.sum(counts * bits))
        gamma = int(counts.sum())
        trials = 6000
        sums_edge = np.array(
            [ch.measure_contributions(counts, bits, gen).sum() for _ in range(trials)]
        )
        sums_agg = ch.measure(np.full(trials, e1), gamma, gen)
        assert abs(sums_edge.mean() - sums_agg.mean()) < 0.15
        assert abs(sums_edge.var() - sums_agg.var()) < 0.3

    def test_edge_mean(self):
        ch = NoisyChannel(0.2, 0.1)
        prior = 0.3
        assert ch.edge_mean(prior) == pytest.approx(0.1 + 0.3 * 0.7)

    def test_is_z_channel_flag(self):
        assert NoisyChannel(0.2, 0.0).is_z_channel
        assert not NoisyChannel(0.2, 0.01).is_z_channel


class TestZChannel:
    def test_q_is_zero(self):
        ch = ZChannel(0.3)
        assert ch.q == 0.0
        assert ch.is_z_channel

    def test_zero_agents_never_flip(self, rng):
        ch = ZChannel(0.3)
        # e1 = 0: no ones present; Z-channel must report exactly 0.
        results = ch.measure(np.zeros(100, dtype=np.int64), 50, rng)
        assert np.all(results == 0)

    def test_describe_mentions_z(self):
        assert "z-channel" in ZChannel(0.1).describe()


class TestGaussianQueryNoise:
    def test_zero_lambda_is_identity(self, rng):
        ch = GaussianQueryNoise(0.0)
        e1 = np.array([1.0, 2.0, 3.0])
        assert np.array_equal(ch.measure(e1, 10, rng), e1)

    def test_e1_out_of_range_rejected(self, rng):
        # Regression: the Gaussian channel must validate like the noisy
        # channel so corrupted replay data fails loudly everywhere.
        ch = GaussianQueryNoise(1.0)
        with pytest.raises(ValueError):
            ch.measure(np.array([11.0]), 10, rng)
        with pytest.raises(ValueError):
            ch.measure(np.array([-0.5]), 10, rng)
        # per-query sizes: each e1 is checked against its own size
        with pytest.raises(ValueError):
            ch.measure(np.array([3.0, 8.0]), np.array([5, 7]), rng)

    def test_zero_lambda_still_validates(self, rng):
        with pytest.raises(ValueError):
            GaussianQueryNoise(0.0).measure(np.array([11.0]), 10, rng)

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            GaussianQueryNoise(-1.0)

    def test_moments(self):
        gen = np.random.default_rng(15)
        lam, trials = 2.0, 20000
        ch = GaussianQueryNoise(lam)
        samples = ch.measure(np.full(trials, 5.0), 10, gen)
        assert abs(samples.mean() - 5.0) < 0.05
        assert abs(samples.std() - lam) < 0.05

    def test_not_integer_valued(self):
        assert not GaussianQueryNoise(1.0).integer_valued

    def test_contributions_are_exact(self, rng):
        ch = GaussianQueryNoise(3.0)
        out = ch.measure_contributions(np.array([2, 5]), np.array([1, 0]), rng)
        assert np.array_equal(out, np.array([2.0, 0.0]))

    def test_query_level_noise_distribution(self):
        gen = np.random.default_rng(16)
        ch = GaussianQueryNoise(1.5)
        noise = np.array([ch.query_level_noise(gen) for _ in range(5000)])
        assert abs(noise.mean()) < 0.07
        assert abs(noise.std() - 1.5) < 0.07

    def test_edge_mean(self):
        assert GaussianQueryNoise(2.0).edge_mean(0.4) == pytest.approx(0.4)


class TestMakeChannel:
    def test_noiseless(self):
        assert isinstance(make_channel("noiseless"), NoiselessChannel)

    def test_z(self):
        ch = make_channel("z", p=0.2)
        assert isinstance(ch, ZChannel)
        assert ch.p == 0.2

    def test_general(self):
        ch = make_channel("channel", p=0.2, q=0.1)
        assert isinstance(ch, NoisyChannel)
        assert (ch.p, ch.q) == (0.2, 0.1)

    def test_gaussian(self):
        ch = make_channel("gaussian", lam=2.5)
        assert isinstance(ch, GaussianQueryNoise)
        assert ch.lam == 2.5

    def test_case_insensitive(self):
        assert isinstance(make_channel("Z", p=0.1), ZChannel)

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_channel("bogus")


class TestEffectiveChannelRegime:
    def test_zero_q_is_like_z(self):
        assert effective_channel_regime(0.0, 10, 10_000) == "like-z"

    def test_tiny_q_is_like_z(self):
        assert effective_channel_regime(1e-8, 10, 10_000) == "like-z"

    def test_large_q_is_positive(self):
        assert effective_channel_regime(0.1, 10, 10_000) == "like-positive-q"

    def test_borderline_is_intermediate(self):
        assert effective_channel_regime(0.001, 10, 10_000) == "intermediate"
