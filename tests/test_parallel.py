"""Seeded-equivalence tests for the multiprocess trial-sharding subsystem.

The contract under test: sharding trials across worker processes
(``workers > 1``) returns *bit-identical* results to the serial path —
same ``RequiredQueriesSample`` values, same success-rate/overlap
arrays — for every algorithm and engine, because the scheduler spawns
the same per-trial child seeds, chunks them order-preservingly, and
merges outcomes in trial order.
"""

import multiprocessing
import os
import subprocess
import sys
import textwrap

import numpy as np
import pytest

import repro
from repro.core.chunking import chunk_bounds, chunk_sequence
from repro.experiments import parallel
from repro.experiments.runner import (
    required_queries_trials,
    success_rate_curve,
)


class _KillOnceChannel(repro.NoiselessChannel):
    """Noiseless channel that kills its worker process exactly once.

    The first worker to measure while the flag file exists removes it
    and dies with ``os._exit`` (simulating an OOM kill / segfault mid
    sweep); every later measurement — in particular the whole fresh
    pool retry — behaves noiselessly. Module-level so ``spawn`` workers
    can unpickle it.
    """

    def __init__(self, flag_path):
        self.flag_path = flag_path

    def measure(self, e1, gamma, rng=None):
        if os.path.exists(self.flag_path):
            try:
                os.remove(self.flag_path)
            except OSError:
                pass
            os._exit(1)
        return super().measure(e1, gamma, rng)


class _AlwaysKillChannel(repro.NoiselessChannel):
    """Channel whose every worker-side measurement kills the process."""

    def measure(self, e1, gamma, rng=None):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        return super().measure(e1, gamma, rng)


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    parallel.shutdown_pool()


class TestChunking:
    def test_bounds_cover_range_in_order(self):
        assert chunk_bounds(10, 4) == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_no_empty_chunks(self):
        assert chunk_bounds(2, 5) == [(0, 1), (1, 2)]
        assert chunk_bounds(0, 3) == []

    def test_sizes_differ_by_at_most_one(self):
        for total in range(0, 40):
            for chunks in range(1, 9):
                bounds = chunk_bounds(total, chunks)
                sizes = [hi - lo for lo, hi in bounds]
                assert sum(sizes) == total
                if sizes:
                    assert max(sizes) - min(sizes) <= 1
                    assert all(s >= 1 for s in sizes)
                # contiguous and ordered
                flat = [x for lo, hi in bounds for x in range(lo, hi)]
                assert flat == list(range(total))

    def test_sequence_concatenation_is_identity(self):
        items = list(range(17))
        for chunks in (1, 2, 5, 17, 30):
            merged = [x for part in chunk_sequence(items, chunks) for x in part]
            assert merged == items

    def test_validation(self):
        with pytest.raises(ValueError):
            chunk_bounds(-1, 2)
        with pytest.raises(ValueError):
            chunk_bounds(4, 0)
        with pytest.raises(TypeError):
            chunk_bounds(4.0, 2)


class TestResolveWorkers:
    def test_explicit_value(self):
        assert parallel.resolve_workers(3) == 3

    def test_zero_means_cpu_count(self):
        assert parallel.resolve_workers(0) == (os.cpu_count() or 1)

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(parallel.WORKERS_ENV, raising=False)
        assert parallel.resolve_workers(None) == 1

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "3")
        assert parallel.resolve_workers(None) == 3
        # explicit argument wins over the environment
        assert parallel.resolve_workers(1) == 1

    def test_env_var_invalid(self, monkeypatch):
        monkeypatch.setenv(parallel.WORKERS_ENV, "many")
        with pytest.raises(ValueError, match="REPRO_WORKERS"):
            parallel.resolve_workers(None)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            parallel.resolve_workers(-1)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError, match="workers"):
            parallel.resolve_workers(2.5)
        with pytest.raises(TypeError, match="workers"):
            parallel.resolve_workers(True)


class TestStartMethod:
    def test_spawn_is_used(self):
        # Windows has no fork; the subsystem must not rely on it.
        assert parallel.START_METHOD == "spawn"
        assert "spawn" in multiprocessing.get_all_start_methods()


class TestRequiredQueriesEquivalence:
    @pytest.mark.parametrize("engine", ["batch", "legacy"])
    def test_sharded_matches_serial(self, engine):
        serial = required_queries_trials(
            150, 4, repro.ZChannel(0.1), trials=7, seed=11, engine=engine
        )
        sharded = required_queries_trials(
            150,
            4,
            repro.ZChannel(0.1),
            trials=7,
            seed=11,
            engine=engine,
            workers=2,
        )
        assert sharded.values == serial.values
        assert sharded.failures == serial.failures

    def test_failures_counted_identically(self):
        serial = required_queries_trials(
            200, 5, repro.ZChannel(0.1), trials=4, seed=0, max_m=2
        )
        sharded = required_queries_trials(
            200, 5, repro.ZChannel(0.1), trials=4, seed=0, max_m=2, workers=2
        )
        assert serial.failures == sharded.failures == 4

    def test_worker_count_does_not_matter(self):
        samples = [
            required_queries_trials(
                120, 3, repro.NoiselessChannel(), trials=5, seed=3, workers=w
            )
            for w in (1, 2, 3)
        ]
        assert samples[0].values == samples[1].values == samples[2].values


class TestSuccessCurveEquivalence:
    @pytest.mark.parametrize("engine", ["batch", "legacy"])
    def test_greedy_sharded_matches_serial(self, engine):
        kwargs = dict(trials=8, seed=4, engine=engine)
        serial = success_rate_curve(
            200, 4, repro.ZChannel(0.2), [30, 120], **kwargs
        )
        sharded = success_rate_curve(
            200, 4, repro.ZChannel(0.2), [30, 120], workers=2, **kwargs
        )
        assert sharded.success_rates == serial.success_rates
        assert sharded.overlaps == serial.overlaps

    @pytest.mark.parametrize("engine", ["batch", "legacy"])
    def test_amp_sharded_matches_serial(self, engine):
        # engine="batch" routes chunks through the block-diagonal
        # stacked AMP runner; engine="legacy" through per-trial
        # run_amp. Both must merge bit-identically to serial.
        kwargs = dict(algorithm="amp", trials=5, seed=5, engine=engine)
        serial = success_rate_curve(
            120, 3, repro.NoiselessChannel(), [60], **kwargs
        )
        sharded = success_rate_curve(
            120, 3, repro.NoiselessChannel(), [60], workers=2, **kwargs
        )
        assert sharded.success_rates == serial.success_rates
        assert sharded.overlaps == serial.overlaps

    def test_distributed_sharded_matches_serial(self):
        kwargs = dict(algorithm="distributed", trials=4, seed=6)
        serial = success_rate_curve(40, 3, repro.ZChannel(0.1), [30], **kwargs)
        sharded = success_rate_curve(
            40, 3, repro.ZChannel(0.1), [30], workers=2, **kwargs
        )
        assert sharded.success_rates == serial.success_rates
        assert sharded.overlaps == serial.overlaps

    def test_distributed_amp_honors_kernel(self):
        # kernel= reaches run_distributed_amp through the cell's
        # algorithm_kwargs; numpy is the reference backend, so the
        # curve matches a kernel-less run exactly.
        kwargs = dict(algorithm="distributed_amp", trials=4, seed=6)
        plain = success_rate_curve(40, 3, repro.ZChannel(0.1), [40], **kwargs)
        kerneled = success_rate_curve(
            40, 3, repro.ZChannel(0.1), [40], kernel="numpy", **kwargs
        )
        assert kerneled.success_rates == plain.success_rates
        assert kerneled.overlaps == plain.overlaps

    def test_kernel_rejected_for_non_amp_algorithms(self):
        with pytest.raises(ValueError, match="has none"):
            success_rate_curve(
                40, 3, repro.ZChannel(0.1), [30],
                trials=2, algorithm="greedy", kernel="numpy",
            )

    def test_env_var_drives_sharding(self, monkeypatch):
        serial = success_rate_curve(
            150, 3, repro.ZChannel(0.1), [40, 80], trials=6, seed=8
        )
        monkeypatch.setenv(parallel.WORKERS_ENV, "2")
        sharded = success_rate_curve(
            150, 3, repro.ZChannel(0.1), [40, 80], trials=6, seed=8
        )
        assert sharded.success_rates == serial.success_rates
        assert sharded.overlaps == serial.overlaps


class TestPoolLifecycle:
    def test_atexit_hook_shuts_down_cached_pool(self):
        # An interpreter that used the cached pool and never called
        # shutdown_pool() must still run it at exit (the registered
        # atexit hook) and terminate cleanly. The instance-level
        # shutdown wrapper proves it is *our* hook doing the work, not
        # concurrent.futures' own exit handler.
        code = textwrap.dedent(
            """
            import repro
            from repro.experiments import parallel
            from repro.experiments.runner import required_queries_trials

            sample = required_queries_trials(
                100, 3, repro.NoiselessChannel(), trials=2, seed=0, workers=2
            )
            assert sample.values, sample
            pool = parallel._pool
            assert pool is not None  # cached across the sweep
            original = pool.shutdown

            def marked(*args, **kwargs):
                print("SHUTDOWN_POOL_RAN", flush=True)
                return original(*args, **kwargs)

            pool.shutdown = marked
            print("SWEEP_DONE", sample.values, flush=True)
            """
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env.pop(parallel.WORKERS_ENV, None)
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            timeout=180,
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SWEEP_DONE" in proc.stdout
        assert "SHUTDOWN_POOL_RAN" in proc.stdout, proc.stdout

    def test_broken_pool_mid_sweep_retried_on_fresh_pool(self, tmp_path):
        # A worker dying *mid-sweep* (not at pool creation) must not
        # fail the sweep: the engine reruns every unfinished chunk on
        # a fresh pool, and the merged outcome is bit-identical to the
        # serial run (trials are pure functions of their seeds).
        flag = tmp_path / "kill-once"
        flag.touch()
        sample = required_queries_trials(
            120,
            3,
            _KillOnceChannel(str(flag)),
            trials=5,
            seed=3,
            workers=2,
        )
        reference = required_queries_trials(
            120, 3, repro.NoiselessChannel(), trials=5, seed=3
        )
        assert not flag.exists()  # the first attempt did die
        assert sample.values == reference.values
        assert sample.failures == reference.failures

    def test_broken_pool_twice_fails_the_sweep(self):
        from concurrent.futures.process import BrokenProcessPool

        with pytest.raises(BrokenProcessPool):
            required_queries_trials(
                100, 3, _AlwaysKillChannel(), trials=4, seed=1, workers=2
            )
        # the broken executor must not poison later sweeps
        after = required_queries_trials(
            100, 3, repro.NoiselessChannel(), trials=3, seed=2, workers=2
        )
        assert after.trials == 3


class TestSchedulerInternals:
    def test_required_queries_outcomes_trial_order(self):
        # Outcomes arrive in trial order regardless of chunk layout.
        serial = required_queries_trials(
            150, 4, repro.NoiselessChannel(), trials=6, seed=2
        )
        outcomes = parallel.required_queries_outcomes(
            150,
            4,
            repro.NoiselessChannel(),
            trials=6,
            seed=2,
            workers=2,
        )
        assert [m for ok, m in outcomes if ok] == serial.values

    def test_pool_reuse_and_shutdown(self):
        pool_a = parallel._get_pool(2)
        assert parallel._get_pool(2) is pool_a
        pool_b = parallel._get_pool(3)
        assert pool_b is not pool_a
        parallel.shutdown_pool()
        assert parallel._pool is None
