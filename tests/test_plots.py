"""Tests for the ASCII plotting helpers."""

import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.plots import MARKERS, ascii_plot, plot_figure_result


class TestAsciiPlot:
    def test_basic_render(self):
        text = ascii_plot(
            {"a": [(1, 1), (2, 2), (3, 3)]}, width=20, height=5, title="T"
        )
        assert "T" in text
        assert "o=a" in text
        assert text.count("o") >= 3

    def test_log_axes(self):
        text = ascii_plot(
            {"s": [(10, 100), (100, 1000), (1000, 10000)]},
            log_x=True,
            log_y=True,
            width=30,
            height=6,
        )
        assert "1e+03" in text or "1000" in text

    def test_log_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            ascii_plot({"s": [(0, 1)]}, log_x=True)

    def test_multiple_series_distinct_markers(self):
        text = ascii_plot(
            {"a": [(0, 0)], "b": [(1, 1)], "c": [(2, 2)]}, width=10, height=4
        )
        for i, label in enumerate("abc"):
            assert f"{MARKERS[i]}={label}" in text

    def test_none_y_skipped(self):
        text = ascii_plot({"a": [(1, None), (2, 5)]}, width=10, height=4)
        assert text.count("o") >= 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": []})

    def test_constant_series_no_crash(self):
        text = ascii_plot({"a": [(1, 5), (2, 5)]}, width=10, height=4)
        assert "o" in text


class TestPlotFigureResult:
    def test_from_figure_rows(self):
        result = FigureResult(
            figure="figX",
            description="demo",
            params={},
            rows=[
                {"series": "a", "n": 10, "y": 1.0},
                {"series": "a", "n": 100, "y": 2.0},
                {"series": "b", "n": 10, "y": 3.0},
            ],
        )
        text = plot_figure_result(result, x_key="n", y_key="y", log_x=True)
        assert "figX" in text
        assert "o=a" in text and "x=b" in text

    def test_missing_y_rows_skipped(self):
        result = FigureResult(
            figure="figY",
            description="demo",
            params={},
            rows=[
                {"series": "a", "n": 10, "y": 1.0},
                {"series": "theory", "n": 10, "y": None},
            ],
        )
        text = plot_figure_result(result, x_key="n", y_key="y")
        assert "o=a" in text
