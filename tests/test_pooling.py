"""Unit tests for repro.core.pooling."""

import numpy as np
import pytest

from repro.core.pooling import (
    PoolingGraph,
    PoolingGraphBuilder,
    default_gamma,
    sample_pooling_graph,
    sample_query,
    sample_regular_design,
)


class TestDefaultGamma:
    def test_half_n(self):
        assert default_gamma(1000) == 500
        assert default_gamma(999) == 499

    def test_at_least_one(self):
        assert default_gamma(1) == 1

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            default_gamma(0)


class TestSampleQuery:
    def test_total_multiplicity_is_gamma(self, rng):
        agents, counts = sample_query(100, 50, rng)
        assert counts.sum() == 50

    def test_agents_sorted_unique(self, rng):
        agents, counts = sample_query(100, 50, rng)
        assert np.all(np.diff(agents) > 0)

    def test_agents_in_range(self, rng):
        agents, _ = sample_query(20, 200, rng)
        assert agents.min() >= 0 and agents.max() < 20

    def test_counts_positive(self, rng):
        _, counts = sample_query(50, 25, rng)
        assert counts.min() >= 1

    def test_gamma_larger_than_n_allowed(self, rng):
        # With replacement the query size may exceed n.
        agents, counts = sample_query(5, 100, rng)
        assert counts.sum() == 100
        assert agents.size <= 5

    def test_expected_distinct_fraction(self):
        # E[distinct] = n(1 - (1-1/n)^Gamma) ~ n(1 - e^{-1/2}) for Gamma=n/2.
        gen = np.random.default_rng(3)
        n, gamma, trials = 2000, 1000, 50
        distinct = [sample_query(n, gamma, gen)[0].size for _ in range(trials)]
        expected = n * (1 - (1 - 1 / n) ** gamma)
        assert abs(np.mean(distinct) - expected) < 0.02 * expected


class TestPoolingGraph:
    def test_shapes_and_sizes(self, rng):
        g = sample_pooling_graph(100, 20, rng=rng)
        assert g.n == 100
        assert g.m == 20
        assert g.gamma == 50
        assert g.total_edges == 20 * 50
        assert np.array_equal(g.query_sizes(), np.full(20, 50))

    def test_distinct_sizes_bounded(self, rng):
        g = sample_pooling_graph(100, 20, rng=rng)
        distinct = g.distinct_sizes()
        assert np.all(distinct >= 1)
        assert np.all(distinct <= 50)

    def test_query_accessor_matches_csr(self, rng):
        g = sample_pooling_graph(50, 10, rng=rng)
        for j in range(g.m):
            agents, counts = g.query(j)
            lo, hi = g.indptr[j], g.indptr[j + 1]
            assert np.array_equal(agents, g.agents[lo:hi])
            assert np.array_equal(counts, g.counts[lo:hi])

    def test_query_index_out_of_range(self, rng):
        g = sample_pooling_graph(50, 3, rng=rng)
        with pytest.raises(IndexError):
            g.query(3)
        with pytest.raises(IndexError):
            g.query(-1)

    def test_degree_identities(self, rng):
        g = sample_pooling_graph(80, 30, rng=rng)
        delta = g.multi_degrees()
        delta_star = g.distinct_degrees()
        assert delta.sum() == g.total_edges
        assert delta_star.sum() == g.agents.size
        assert np.all(delta_star <= delta)
        assert np.all(delta_star <= g.m)

    def test_edges_into_ones_extremes(self, rng):
        g = sample_pooling_graph(60, 12, rng=rng)
        zeros = np.zeros(60, dtype=np.int8)
        ones = np.ones(60, dtype=np.int8)
        assert np.array_equal(g.edges_into_ones(zeros), np.zeros(12, dtype=np.int64))
        assert np.array_equal(g.edges_into_ones(ones), np.full(12, g.gamma))

    def test_edges_into_ones_matches_bruteforce(self, rng):
        g = sample_pooling_graph(40, 15, rng=rng)
        sigma = (np.arange(40) % 3 == 0).astype(np.int8)
        expected = []
        for j in range(g.m):
            agents, counts = g.query(j)
            expected.append(int(np.sum(counts * sigma[agents])))
        assert np.array_equal(g.edges_into_ones(sigma), np.array(expected))

    def test_edges_into_ones_shape_check(self, rng):
        g = sample_pooling_graph(40, 5, rng=rng)
        with pytest.raises(ValueError):
            g.edges_into_ones(np.zeros(39))

    def test_neighborhood_sums_matches_bruteforce(self, rng):
        g = sample_pooling_graph(30, 25, rng=rng)
        results = rng.normal(size=g.m)
        psi = g.neighborhood_sums(results)
        expected = np.zeros(30)
        for j in range(g.m):
            agents, _ = g.query(j)
            expected[agents] += results[j]
        assert np.allclose(psi, expected)

    def test_neighborhood_sums_shape_check(self, rng):
        g = sample_pooling_graph(30, 5, rng=rng)
        with pytest.raises(ValueError):
            g.neighborhood_sums(np.zeros(4))

    def test_adjacency_dense_row_sums(self, rng):
        g = sample_pooling_graph(50, 8, rng=rng)
        a = g.adjacency_dense()
        assert a.shape == (8, 50)
        assert np.allclose(a.sum(axis=1), g.gamma)

    def test_adjacency_sparse_matches_dense(self, rng):
        g = sample_pooling_graph(50, 8, rng=rng)
        assert np.allclose(g.adjacency_sparse().toarray(), g.adjacency_dense())

    def test_distinct_incidence_is_binary(self, rng):
        g = sample_pooling_graph(50, 8, rng=rng)
        b = g.distinct_incidence_sparse().toarray()
        assert set(np.unique(b)).issubset({0.0, 1.0})
        assert b.sum() == g.agents.size

    def test_head_prefix(self, rng):
        g = sample_pooling_graph(50, 10, rng=rng)
        h = g.head(4)
        assert h.m == 4
        for j in range(4):
            ga, gc = g.query(j)
            ha, hc = h.query(j)
            assert np.array_equal(ga, ha)
            assert np.array_equal(gc, hc)

    def test_head_bounds(self, rng):
        g = sample_pooling_graph(50, 10, rng=rng)
        assert g.head(0).m == 0
        assert g.head(10).m == 10
        with pytest.raises(ValueError):
            g.head(11)

    def test_zero_queries_graph(self, rng):
        g = sample_pooling_graph(10, 0, rng=rng)
        assert g.m == 0
        assert g.total_edges == 0
        assert np.array_equal(g.multi_degrees(), np.zeros(10, dtype=np.int64))

    def test_validation_rejects_bad_indptr(self):
        with pytest.raises(ValueError):
            PoolingGraph(
                n=5,
                gamma=2,
                indptr=np.array([1, 2]),
                agents=np.array([0]),
                counts=np.array([1]),
            )

    def test_validation_rejects_out_of_range_agent(self):
        with pytest.raises(ValueError):
            PoolingGraph(
                n=5,
                gamma=2,
                indptr=np.array([0, 1]),
                agents=np.array([7]),
                counts=np.array([1]),
            )

    def test_validation_rejects_zero_count(self):
        with pytest.raises(ValueError):
            PoolingGraph(
                n=5,
                gamma=2,
                indptr=np.array([0, 1]),
                agents=np.array([1]),
                counts=np.array([0]),
            )

    def test_determinism(self):
        a = sample_pooling_graph(100, 10, rng=7)
        b = sample_pooling_graph(100, 10, rng=7)
        assert np.array_equal(a.agents, b.agents)
        assert np.array_equal(a.counts, b.counts)

    def test_without_replacement_design(self, rng):
        g = sample_pooling_graph(100, 10, rng=rng, with_replacement=False)
        assert np.all(g.counts == 1)
        assert np.array_equal(g.distinct_sizes(), np.full(10, g.gamma))

    def test_without_replacement_gamma_too_large(self, rng):
        with pytest.raises(ValueError):
            sample_pooling_graph(10, 2, gamma=11, rng=rng, with_replacement=False)

    def test_to_networkx_roundtrip(self, rng):
        nx = pytest.importorskip("networkx")
        g = sample_pooling_graph(10, 3, gamma=5, rng=rng)
        nxg = g.to_networkx()
        assert nxg.number_of_edges() == g.total_edges
        assert nxg.number_of_nodes() == 10 + 3


class TestRegularDesign:
    def test_every_agent_has_exact_degree(self, rng):
        g = sample_regular_design(60, 20, agent_degree=5, rng=rng)
        assert np.array_equal(g.distinct_degrees(), np.full(60, 5))
        assert np.array_equal(g.multi_degrees(), np.full(60, 5))

    def test_simple_graph_counts(self, rng):
        g = sample_regular_design(40, 10, agent_degree=3, rng=rng)
        assert np.all(g.counts == 1)

    def test_total_edges(self, rng):
        g = sample_regular_design(40, 10, agent_degree=3, rng=rng)
        assert g.total_edges == 40 * 3

    def test_expected_query_size_stored(self, rng):
        g = sample_regular_design(40, 10, agent_degree=3, rng=rng)
        assert g.gamma == round(40 * 3 / 10)
        assert g.query_sizes().sum() == 120

    def test_degree_cannot_exceed_m(self, rng):
        with pytest.raises(ValueError):
            sample_regular_design(10, 3, agent_degree=4, rng=rng)

    def test_measurable_and_decodable(self, rng):
        import repro

        truth = repro.sample_ground_truth(100, 4, rng)
        g = sample_regular_design(100, 120, agent_degree=30, rng=rng)
        meas = repro.measure(g, truth, repro.ZChannel(0.1), rng)
        result = repro.greedy_reconstruct(meas)
        assert result.estimate.sum() == 4

    def test_variable_sizes_respected_by_channel(self, rng):
        # The noisy channel must use realized per-query sizes: results
        # can never exceed a query's actual edge count.
        import repro

        truth = repro.sample_ground_truth(50, 25, rng)
        g = sample_regular_design(50, 20, agent_degree=6, rng=rng)
        meas = repro.measure(g, truth, repro.NoisyChannel(0.0, 1 - 1e-9), rng)
        sizes = g.query_sizes()
        assert np.all(meas.results <= sizes)


class TestPoolingGraphBuilder:
    def test_incremental_build_matches_batch_semantics(self, rng):
        builder = PoolingGraphBuilder(50, gamma=25)
        for _ in range(6):
            builder.sample_and_add(rng)
        g = builder.build()
        assert g.m == 6
        assert g.total_edges == 6 * 25

    def test_add_query_validates_range(self):
        builder = PoolingGraphBuilder(5)
        with pytest.raises(ValueError):
            builder.add_query(np.array([9]), np.array([1]))

    def test_add_query_validates_shapes(self):
        builder = PoolingGraphBuilder(5)
        with pytest.raises(ValueError):
            builder.add_query(np.array([1, 2]), np.array([1]))

    def test_empty_build(self):
        g = PoolingGraphBuilder(5).build()
        assert g.m == 0

    def test_default_gamma_used(self):
        builder = PoolingGraphBuilder(100)
        assert builder.gamma == 50
