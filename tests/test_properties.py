"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.scores import separation_margin, top_k_estimate
from repro.core.types import evaluate_estimate
from repro.distributed.sorting import apply_schedule, odd_even_mergesort
from repro.experiments.stats import boxplot_stats
from repro.theory.concentration import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    gaussian_tail_exact,
    gaussian_tail_lower,
    gaussian_tail_upper,
)

# Keep the per-test example budget modest: every example builds real
# numpy structures, and the suite runs hundreds of tests.
COMMON_SETTINGS = settings(max_examples=40, deadline=None)


@COMMON_SETTINGS
@given(
    n=st.integers(2, 80),
    gamma=st.integers(1, 120),
    seed=st.integers(0, 2**31 - 1),
)
def test_sampled_query_mass_conservation(n, gamma, seed):
    agents, counts = repro.sample_query(n, gamma, seed)
    assert counts.sum() == gamma
    assert agents.size == np.unique(agents).size
    assert np.all(np.diff(agents) > 0)
    assert np.all((0 <= agents) & (agents < n))
    assert np.all(counts >= 1)


@COMMON_SETTINGS
@given(
    n=st.integers(2, 50),
    m=st.integers(0, 25),
    seed=st.integers(0, 2**31 - 1),
)
def test_pooling_graph_degree_identities(n, m, seed):
    g = repro.sample_pooling_graph(n, m, rng=seed)
    delta = g.multi_degrees()
    delta_star = g.distinct_degrees()
    assert delta.sum() == m * g.gamma
    assert np.all(delta_star <= delta)
    assert np.all(delta_star <= m)
    assert np.array_equal(g.query_sizes(), np.full(m, g.gamma))


@COMMON_SETTINGS
@given(
    n=st.integers(2, 50),
    m=st.integers(1, 20),
    seed=st.integers(0, 2**31 - 1),
    data=st.data(),
)
def test_query_sizes_sum_to_total_edges_across_designs(n, m, seed, data):
    """query_sizes().sum() == total_edges for every pooling design."""
    gamma = data.draw(st.integers(1, 40))
    agent_degree = data.draw(st.integers(1, m))
    graphs = [
        repro.sample_pooling_graph(n, m, gamma, rng=seed),
        repro.sample_pooling_graph_batch(n, m, gamma, rng=seed),
        repro.sample_pooling_graph(
            n, m, min(gamma, n), rng=seed, with_replacement=False
        ),
        repro.sample_regular_design(n, m, agent_degree, rng=seed),
    ]
    for g in graphs:
        sizes = g.query_sizes()
        assert sizes.sum() == g.total_edges
        assert sizes.shape == (g.m,)
        assert np.all(sizes >= 0)
    # the fixed-size designs additionally have all sizes equal gamma
    assert np.all(graphs[0].query_sizes() == gamma)
    assert np.all(graphs[1].query_sizes() == gamma)
    # the regular design conserves total mass n * agent_degree
    assert graphs[3].total_edges == n * agent_degree


@COMMON_SETTINGS
@given(
    n=st.integers(1, 60),
    k_frac=st.floats(0.0, 1.0),
    seed=st.integers(0, 2**31 - 1),
)
def test_ground_truth_weight_invariant(n, k_frac, seed):
    k = int(round(k_frac * n))
    truth = repro.sample_ground_truth(n, k, seed)
    assert truth.sigma.sum() == k
    assert truth.ones.size == k
    assert truth.zeros.size == n - k


@COMMON_SETTINGS
@given(
    # Integer-valued scores and bounded shifts: distinct scores differ by
    # >= 1, so float rounding of the shift cannot reorder or merge them
    # (absorption like 1e-61 + 1.0 == 1.0 is out of scope for the
    # decoder, whose scores are query-result sums of moderate size).
    scores=st.lists(
        st.integers(-10**6, 10**6).map(float), min_size=1, max_size=60
    ),
    shift=st.floats(-1e5, 1e5),
    data=st.data(),
)
def test_top_k_translation_invariance(scores, shift, data):
    scores = np.asarray(scores)
    k = data.draw(st.integers(0, scores.size))
    base = top_k_estimate(scores, k)
    shifted = top_k_estimate(scores + shift, k)
    assert base.sum() == k
    assert np.array_equal(base, shifted)


@COMMON_SETTINGS
@given(
    scores=st.lists(st.floats(-100, 100), min_size=2, max_size=60),
    data=st.data(),
)
def test_strict_separation_implies_topk_exact(scores, data):
    scores = np.asarray(scores)
    n = scores.size
    k = data.draw(st.integers(1, n - 1))
    sigma = top_k_estimate(scores, k)  # treat the top-k as ground truth
    if separation_margin(scores, sigma) > 0:
        out = evaluate_estimate(top_k_estimate(scores, k), sigma, scores)
        assert out["exact"]


@COMMON_SETTINGS
@given(
    est=st.lists(st.integers(0, 1), min_size=1, max_size=60),
    truth=st.lists(st.integers(0, 1), min_size=1, max_size=60),
)
def test_evaluate_estimate_ranges(est, truth):
    size = min(len(est), len(truth))
    est_arr = np.asarray(est[:size])
    truth_arr = np.asarray(truth[:size])
    out = evaluate_estimate(est_arr, truth_arr)
    assert 0.0 <= out["overlap"] <= 1.0
    assert 0 <= out["hamming_errors"] <= size
    assert out["exact"] == (out["hamming_errors"] == 0)


@COMMON_SETTINGS
@given(
    keys=st.lists(st.integers(-1000, 1000), min_size=1, max_size=40),
)
def test_odd_even_mergesort_sorts_anything(keys):
    schedule = odd_even_mergesort(len(keys))
    assert apply_schedule(keys, schedule) == sorted(keys)


@COMMON_SETTINGS
@given(
    e1=st.integers(0, 200),
    gamma=st.integers(200, 400),
    p=st.floats(0.0, 0.8),
    q=st.floats(0.0, 0.19),
    seed=st.integers(0, 2**31 - 1),
)
def test_noisy_channel_result_range(e1, gamma, p, q, seed):
    if p + q >= 1.0:
        return
    channel = repro.NoisyChannel(p, q)
    result = channel.measure(np.asarray([e1]), gamma, seed)[0]
    assert 0 <= result <= gamma
    if q == 0.0:
        assert result <= e1  # Z-channel can only lose ones


@COMMON_SETTINGS
@given(
    p1=st.floats(0.0, 0.45),
    p2=st.floats(0.46, 0.9),
    n=st.integers(10, 10_000),
    theta=st.floats(0.05, 0.95),
)
def test_theorem1_z_monotone_in_p(p1, p2, n, theta):
    lo = repro.theorem1_sublinear_z(n, theta, p1)
    hi = repro.theorem1_sublinear_z(n, theta, p2)
    assert hi > lo


@COMMON_SETTINGS
@given(
    eps=st.floats(0.01, 5.0),
    mean1=st.floats(0.1, 100.0),
    mean2=st.floats(100.1, 10_000.0),
)
def test_chernoff_monotone_in_mean(eps, mean1, mean2):
    assert chernoff_upper_tail(eps, mean2) <= chernoff_upper_tail(eps, mean1)
    assert chernoff_lower_tail(eps, mean2) <= chernoff_lower_tail(eps, mean1)
    for mean in (mean1, mean2):
        assert 0.0 <= chernoff_upper_tail(eps, mean) <= 1.0


@COMMON_SETTINGS
@given(y=st.floats(0.1, 50.0), lam=st.floats(0.1, 10.0))
def test_gaussian_tail_sandwich(y, lam):
    exact = gaussian_tail_exact(y, lam)
    assert gaussian_tail_lower(y, lam) <= exact + 1e-12
    assert exact <= gaussian_tail_upper(y, lam) + 1e-12


@COMMON_SETTINGS
@given(
    values=st.lists(st.floats(-1e5, 1e5), min_size=1, max_size=80),
)
def test_boxplot_stats_ordering(values):
    stats = boxplot_stats(values)
    assert stats.whisker_low <= stats.q1 <= stats.median <= stats.q3
    assert stats.q3 <= stats.whisker_high
    assert stats.count == len(values)
    arr = np.asarray(values)
    assert arr.min() <= stats.whisker_low
    assert stats.whisker_high <= arr.max()


@COMMON_SETTINGS
@given(
    n=st.integers(2, 40),
    m=st.integers(1, 15),
    seed=st.integers(0, 2**31 - 1),
)
def test_neighborhood_sums_linear_in_results(n, m, seed):
    g = repro.sample_pooling_graph(n, m, rng=seed)
    gen = np.random.default_rng(seed)
    r1 = gen.normal(size=m)
    r2 = gen.normal(size=m)
    psi1 = g.neighborhood_sums(r1)
    psi2 = g.neighborhood_sums(r2)
    combined = g.neighborhood_sums(2.0 * r1 + 3.0 * r2)
    assert np.allclose(combined, 2.0 * psi1 + 3.0 * psi2)


@COMMON_SETTINGS
@given(
    n=st.integers(4, 40),
    seed=st.integers(0, 2**31 - 1),
)
def test_greedy_estimate_weight_always_k(n, seed):
    gen = np.random.default_rng(seed)
    k = int(gen.integers(1, n))
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, 5, rng=gen)
    meas = repro.measure(graph, truth, repro.ZChannel(0.3), gen)
    result = repro.greedy_reconstruct(meas)
    assert int(result.estimate.sum()) == k
