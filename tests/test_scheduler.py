"""Bit-identity tests for the sweep execution engine.

The contract under test: a multi-cell :class:`SweepPlan` — mixed
algorithms (greedy / amp), mixed engines (batch / legacy), mixed n,
required-m and success-curve cells in one queue — returns results
identical to running each cell through the pre-engine per-cell serial
path on the same seeds, for every backend (``serial`` / ``process`` /
``socket``) and several worker counts. The per-cell references below
deliberately reimplement the old serial loops (BatchTrialRunner /
required_queries / required_queries_amp / run_amp_trials on freshly
spawned child seeds) so the engine is checked against the original
code shape, not against itself.
"""

import os

import numpy as np
import pytest

import repro
from repro.amp.batch_amp import (
    required_queries_amp,
    required_queries_amp_linear,
    run_amp_trials,
)
from repro.core.batch import BatchTrialRunner
from repro.core.incremental import required_queries
from repro.experiments import parallel
from repro.experiments.scheduler import (
    BACKENDS,
    SweepExecutor,
    SweepPlan,
    parse_hosts,
    resolve_backend,
    _intern_spec,
    _SpecMissing,
    _worker_specs,
)
from repro.utils.rng import spawn_rngs, spawn_seeds


@pytest.fixture(scope="module", autouse=True)
def _shutdown_pool_after():
    yield
    parallel.shutdown_pool()


@pytest.fixture(scope="module")
def socket_hosts():
    """Two live localhost socket workers (the cross-host round trip)."""
    from repro.experiments.worker import start_local_workers

    hosts, shutdown = start_local_workers(2)
    assert len(hosts) == 2
    yield hosts
    shutdown()


# -- per-cell serial references (the pre-engine code shape) -------------


def reference_required(n, k, channel, *, trials, seed, algorithm="greedy",
                       engine="batch", check_every=1, max_m=None):
    """The pre-engine serial required-m loop, folded to (values, failures)."""
    if algorithm == "amp":
        scan = (
            required_queries_amp if engine == "batch"
            else required_queries_amp_linear
        )
        runs = scan(
            n, k, channel, spawn_seeds(seed, trials),
            check_every=check_every, max_m=max_m,
        )
        outcomes = [(r.succeeded, r.required_m) for r in runs]
    elif engine == "batch":
        runner = BatchTrialRunner(n, k, channel)
        outcomes = [
            (r.succeeded, r.required_m)
            for r in (
                runner.required_queries(
                    gen, max_m=max_m, check_every=check_every
                )
                for gen in spawn_rngs(seed, trials)
            )
        ]
    else:
        outcomes = []
        for gen in spawn_rngs(seed, trials):
            r = required_queries(
                n, k, channel, gen, max_m=max_m, check_every=check_every
            )
            outcomes.append((r.succeeded, r.required_m))
    values = [int(m) for ok, m in outcomes if ok]
    failures = sum(1 for ok, _ in outcomes if not ok)
    return values, failures


def reference_curve(n, k, channel, m_values, *, trials, seed,
                    algorithm="greedy", engine="batch"):
    """The pre-engine serial success-curve loop -> (rates, overlaps)."""
    from repro.core.ground_truth import sample_ground_truth
    from repro.core.measurement import measure
    from repro.core.pooling import sample_pooling_graph
    from repro.experiments.runner import _run_algorithm

    rates, overlaps = [], []
    for m, m_rng in zip(m_values, spawn_rngs(seed, len(m_values))):
        m = int(m)
        outcomes = []
        if algorithm == "greedy" and engine == "batch":
            runner = BatchTrialRunner(n, k, channel)
            for r in runner.run_trials(m, trials, seed=m_rng):
                outcomes.append((bool(r.exact), float(r.overlap)))
        elif algorithm == "amp" and engine == "batch":
            for r in run_amp_trials(
                n, k, channel, m, spawn_rngs(m_rng, trials)
            ):
                outcomes.append((bool(r.exact), float(r.overlap)))
        else:
            for gen in spawn_rngs(m_rng, trials):
                truth = sample_ground_truth(n, k, gen)
                graph = sample_pooling_graph(n, m, None, gen)
                meas = measure(graph, truth, channel, gen)
                result = _run_algorithm(algorithm, meas)
                outcomes.append((bool(result.exact), float(result.overlap)))
        rates.append(sum(e for e, _ in outcomes) / trials)
        overlaps.append(sum(o for _, o in outcomes) / trials)
    return rates, overlaps


#: the mixed sweep every backend must reproduce bit-identically:
#: (kind, kwargs) — mixed algorithms, engines, n, and cell kinds
MIXED_CELLS = [
    ("required", dict(n=150, k=4, channel=repro.ZChannel(0.1),
                      trials=7, seed=11, algorithm="greedy", engine="batch")),
    ("required", dict(n=100, k=3, channel=repro.ZChannel(0.1),
                      trials=4, seed=5, algorithm="greedy", engine="legacy")),
    ("required", dict(n=120, k=3, channel=repro.NoiselessChannel(),
                      trials=3, seed=2, algorithm="amp", engine="batch",
                      check_every=4, max_m=400)),
    ("required", dict(n=90, k=3, channel=repro.NoiselessChannel(),
                      trials=2, seed=9, algorithm="amp", engine="legacy",
                      check_every=8, max_m=300)),
    ("curve", dict(n=150, k=4, channel=repro.ZChannel(0.2),
                   m_values=[30, 90], trials=6, seed=4,
                   algorithm="greedy", engine="batch")),
    ("curve", dict(n=120, k=3, channel=repro.NoiselessChannel(),
                   m_values=[60], trials=4, seed=5,
                   algorithm="amp", engine="legacy")),
]


def build_mixed_plan():
    plan = SweepPlan()
    for kind, kwargs in MIXED_CELLS:
        if kind == "required":
            plan.add_required_queries(
                kwargs["n"], kwargs["k"], kwargs["channel"],
                trials=kwargs["trials"], seed=kwargs["seed"],
                algorithm=kwargs["algorithm"], engine=kwargs["engine"],
                check_every=kwargs.get("check_every", 1),
                max_m=kwargs.get("max_m"),
            )
        else:
            plan.add_success_curve(
                kwargs["n"], kwargs["k"], kwargs["channel"],
                kwargs["m_values"], trials=kwargs["trials"],
                seed=kwargs["seed"], algorithm=kwargs["algorithm"],
                engine=kwargs["engine"],
            )
    return plan


def assert_matches_references(results):
    assert len(results) == len(MIXED_CELLS)
    for (kind, kwargs), result in zip(MIXED_CELLS, results):
        if kind == "required":
            values, failures = reference_required(
                kwargs["n"], kwargs["k"], kwargs["channel"],
                trials=kwargs["trials"], seed=kwargs["seed"],
                algorithm=kwargs["algorithm"], engine=kwargs["engine"],
                check_every=kwargs.get("check_every", 1),
                max_m=kwargs.get("max_m"),
            )
            assert result.values == values, kwargs
            assert result.failures == failures, kwargs
            assert result.algorithm == kwargs["algorithm"]
        else:
            rates, overlaps = reference_curve(
                kwargs["n"], kwargs["k"], kwargs["channel"],
                kwargs["m_values"], trials=kwargs["trials"],
                seed=kwargs["seed"], algorithm=kwargs["algorithm"],
                engine=kwargs["engine"],
            )
            assert result.success_rates == rates, kwargs
            assert result.overlaps == overlaps, kwargs


class TestBitIdentity:
    def test_serial_backend_matches_per_cell_references(self):
        assert_matches_references(build_mixed_plan().run(backend="serial"))

    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_process_backend_matches_for_any_worker_count(self, workers):
        results = build_mixed_plan().run(backend="process", workers=workers)
        assert_matches_references(results)

    def test_socket_backend_round_trip(self, socket_hosts):
        # Localhost cross-host round trip with two worker processes:
        # the full mixed sweep must come back bit-identical.
        results = build_mixed_plan().run(
            backend="socket", hosts=socket_hosts
        )
        assert_matches_references(results)

    def test_interning_disabled_is_identical(self):
        plan = build_mixed_plan()
        interned = SweepExecutor(backend="process", workers=2).run(plan)
        shipped = SweepExecutor(
            backend="process", workers=2, intern_specs=False
        ).run(plan)
        for a, b in zip(interned, shipped):
            assert a == b

    def test_plans_are_reusable(self):
        plan = build_mixed_plan()
        first = plan.run(backend="serial")
        second = plan.run(backend="serial")
        assert first == second

    def test_empty_plan(self):
        assert SweepPlan().run(backend="serial") == []

    def test_empty_m_grid_still_folds_one_result_per_cell(self):
        # A cell with an empty m-grid produces zero tasks but must
        # still fold into an (empty) curve — the pre-engine serial
        # loop returned an empty SuccessCurve for m_values=[].
        from repro.experiments.runner import success_rate_curve

        curve = success_rate_curve(
            50, 2, repro.NoiselessChannel(), [], trials=3, seed=0
        )
        assert curve.m_values == []
        assert curve.success_rates == []
        assert curve.overlaps == []
        plan = SweepPlan()
        plan.add_success_curve(50, 2, repro.NoiselessChannel(), [], trials=3)
        plan.add_required_queries(
            100, 3, repro.NoiselessChannel(), trials=2, seed=1
        )
        results = plan.run(backend="process", workers=2)
        assert results[0].m_values == []
        assert results[1].trials == 2


class TestSocketRobustness:
    def test_dead_worker_does_not_lose_chunks(self, socket_hosts):
        # One address refuses connections (a dead host): the surviving
        # worker must pick up every chunk and the merge stays exact.
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()  # nothing listens here any more
        hosts = [socket_hosts[0], f"127.0.0.1:{dead_port}"]
        plan = SweepPlan()
        plan.add_required_queries(
            150, 4, repro.ZChannel(0.1), trials=7, seed=11
        )
        result = plan.run(
            backend="socket", hosts=hosts, connect_retry=0.3
        )[0]
        values, failures = reference_required(
            150, 4, repro.ZChannel(0.1), trials=7, seed=11
        )
        assert result.values == values
        assert result.failures == failures

    def test_all_workers_dead_raises(self):
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        plan = SweepPlan()
        plan.add_required_queries(
            100, 3, repro.NoiselessChannel(), trials=2, seed=0
        )
        # A tiny retry budget keeps the failure fast: the default 30s
        # backoff budget exists for workers that are still booting,
        # not for tests that know the port is dead.
        with pytest.raises((RuntimeError, OSError)):
            plan.run(
                backend="socket",
                hosts=[f"127.0.0.1:{dead_port}"],
                connect_retry=0.3,
            )


class TestBackendResolution:
    def test_default_by_workers(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend(None, 1) == "serial"
        assert resolve_backend(None, 4) == "process"

    def test_explicit_wins(self):
        assert resolve_backend("serial", 8) == "serial"

    def test_env_var_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "serial")
        assert resolve_backend(None, 4) == "serial"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            resolve_backend("quantum", 1)
        assert set(BACKENDS) == {"serial", "process", "socket"}

    def test_parse_hosts(self, monkeypatch):
        assert parse_hosts(["a:1", ("b", 2)]) == [("a", 1), ("b", 2)]
        monkeypatch.setenv("REPRO_HOSTS", "x:7920, y:7921")
        assert parse_hosts(None) == [("x", 7920), ("y", 7921)]
        monkeypatch.setenv("REPRO_HOSTS", "")
        with pytest.raises(ValueError, match="worker addresses"):
            parse_hosts(None)
        with pytest.raises(ValueError, match="host"):
            parse_hosts(["no-port"])


class TestPlanValidation:
    def test_bad_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithm"):
            SweepPlan().add_required_queries(
                100, 3, repro.ZChannel(0.1), algorithm="distributed"
            )
        with pytest.raises(ValueError, match="algorithm"):
            SweepPlan().add_success_curve(
                100, 3, repro.ZChannel(0.1), [10], algorithm="warp"
            )

    def test_bad_engine_and_design_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            SweepPlan().add_required_queries(
                100, 3, repro.ZChannel(0.1), engine="warp"
            )
        with pytest.raises(ValueError, match="design"):
            SweepPlan().add_success_curve(
                100, 3, repro.ZChannel(0.1), [10], design="fancy"
            )

    def test_forced_batch_mode_incompatible_with_design(self):
        # The stacked chunk paths sample the with-replacement design
        # only; forcing one under another design must fail loudly
        # instead of silently mislabeling the ablation data.
        with pytest.raises(ValueError, match="batch_mode"):
            SweepPlan().add_success_curve(
                100, 3, repro.ZChannel(0.1), [10],
                design="regular", batch_mode="greedy",
            )
        # the legacy per-trial loop does honor every design
        plan = SweepPlan()
        plan.add_success_curve(
            100, 3, repro.ZChannel(0.1), [10],
            design="regular", batch_mode=None, trials=2,
        )
        assert plan.run(backend="serial")[0].trials == 2

    def test_trials_validated(self):
        with pytest.raises(ValueError, match="trials"):
            SweepPlan().add_required_queries(
                100, 3, repro.ZChannel(0.1), trials=0
            )


class TestSpecInterning:
    def test_intern_then_hit(self):
        import pickle

        _worker_specs.clear()
        spec = {"n": 10, "payload": "x" * 100}
        blob = pickle.dumps(spec)
        assert _intern_spec("k1", blob) == spec
        # hit: no blob needed any more
        assert _intern_spec("k1", None) == spec

    def test_miss_raises_spec_missing(self):
        _worker_specs.clear()
        with pytest.raises(_SpecMissing):
            _intern_spec("never-seen", None)

    def test_cache_bounded(self):
        import pickle

        from repro.experiments.scheduler import _SPEC_CACHE_LIMIT

        _worker_specs.clear()
        for i in range(_SPEC_CACHE_LIMIT + 10):
            _intern_spec(f"key-{i}", pickle.dumps({"i": i}))
        assert len(_worker_specs) == _SPEC_CACHE_LIMIT
        # oldest entries were evicted, newest retained
        with pytest.raises(_SpecMissing):
            _intern_spec("key-0", None)
        assert _intern_spec(f"key-{_SPEC_CACHE_LIMIT + 9}", None)


class TestSearchThroughEngine:
    def test_threshold_backend_invariant(self):
        from repro.experiments.search import success_probability_threshold

        serial = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=8, seed=0
        )
        sharded = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=8, seed=0,
            workers=2, backend="process",
        )
        assert serial.threshold_m == sharded.threshold_m
        assert serial.probes == sharded.probes
