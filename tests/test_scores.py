"""Unit tests for repro.core.scores."""

import numpy as np
import pytest

import repro
from repro.core.scores import (
    centered_scores,
    expected_query_result,
    scores_from_measurements,
    separation_margin,
    top_k_estimate,
)


class TestCenteredScores:
    def test_half_k_formula(self):
        psi = np.array([10.0, 20.0])
        ds = np.array([2, 4])
        out = centered_scores(psi, ds, k=4, mode="half_k")
        assert np.allclose(out, [10 - 4, 20 - 8])

    def test_none_mode_is_copy(self):
        psi = np.array([1.0, 2.0])
        out = centered_scores(psi, np.array([1, 1]), k=2, mode="none")
        assert np.allclose(out, psi)
        out[0] = 99
        assert psi[0] == 1.0  # original untouched

    def test_oracle_mode(self):
        psi = np.array([10.0])
        out = centered_scores(psi, np.array([2]), k=3, mode="oracle", expected_result=4.0)
        assert np.allclose(out, [2.0])

    def test_oracle_requires_expected(self):
        with pytest.raises(ValueError):
            centered_scores(np.array([1.0]), np.array([1]), k=1, mode="oracle")

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            centered_scores(np.array([1.0]), np.array([1]), k=1, mode="bogus")

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            centered_scores(np.array([1.0, 2.0]), np.array([1]), k=1)


class TestExpectedQueryResult:
    def test_noiseless(self):
        ch = repro.NoiselessChannel()
        assert expected_query_result(ch, 100, 10, 50) == pytest.approx(5.0)

    def test_noisy_channel(self):
        ch = repro.NoisyChannel(0.2, 0.1)
        expected = 50 * (0.1 + 0.1 * 0.7)
        assert expected_query_result(ch, 100, 10, 50) == pytest.approx(expected)

    def test_empirical_agreement(self):
        # The oracle expectation should match the empirical mean result.
        gen = np.random.default_rng(21)
        n, k, m = 400, 40, 300
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        channel = repro.NoisyChannel(0.2, 0.05)
        meas = repro.measure(graph, truth, channel, gen)
        predicted = expected_query_result(channel, n, k, graph.gamma)
        assert abs(meas.results.mean() - predicted) < 0.05 * predicted


class TestTopKEstimate:
    def test_selects_largest(self):
        est = top_k_estimate(np.array([5.0, 1.0, 3.0, 4.0]), 2)
        assert np.array_equal(est, [1, 0, 0, 1])

    def test_k_zero(self):
        est = top_k_estimate(np.array([1.0, 2.0]), 0)
        assert est.sum() == 0

    def test_k_equals_n(self):
        est = top_k_estimate(np.array([1.0, 2.0]), 2)
        assert est.sum() == 2

    def test_k_out_of_range(self):
        with pytest.raises(ValueError):
            top_k_estimate(np.array([1.0]), 2)
        with pytest.raises(ValueError):
            top_k_estimate(np.array([1.0]), -1)

    def test_tie_break_prefers_lower_id(self):
        est = top_k_estimate(np.array([1.0, 1.0, 1.0]), 1)
        assert np.array_equal(est, [1, 0, 0])

    def test_exactly_k_ones(self, rng):
        scores = rng.normal(size=100)
        for k in (0, 1, 10, 99, 100):
            assert top_k_estimate(scores, k).sum() == k

    def test_translation_invariance(self, rng):
        # Adding a constant to all scores must not change the selection.
        scores = rng.normal(size=50)
        a = top_k_estimate(scores, 7)
        b = top_k_estimate(scores + 123.4, 7)
        assert np.array_equal(a, b)


class TestSeparationMargin:
    def test_positive_when_separated(self):
        scores = np.array([10.0, 1.0, 9.0, 2.0])
        sigma = np.array([1, 0, 1, 0])
        assert separation_margin(scores, sigma) == pytest.approx(7.0)

    def test_negative_when_overlapping(self):
        scores = np.array([1.0, 10.0])
        sigma = np.array([1, 0])
        assert separation_margin(scores, sigma) == pytest.approx(-9.0)

    def test_zero_when_touching(self):
        scores = np.array([5.0, 5.0])
        sigma = np.array([1, 0])
        assert separation_margin(scores, sigma) == pytest.approx(0.0)

    def test_degenerate_all_zero(self):
        assert separation_margin(np.array([1.0, 2.0]), np.array([0, 0])) == np.inf

    def test_degenerate_all_one(self):
        assert separation_margin(np.array([1.0, 2.0]), np.array([1, 1])) == np.inf


class TestScoresFromMeasurements:
    def test_half_k_matches_manual(self, z_instance):
        truth, graph, meas = z_instance
        scores = scores_from_measurements(meas)
        psi = graph.neighborhood_sums(meas.results)
        ds = graph.distinct_degrees()
        assert np.allclose(scores, psi - ds * truth.k / 2)

    def test_oracle_mode_runs(self, z_instance):
        _, _, meas = z_instance
        scores = scores_from_measurements(meas, mode="oracle")
        assert scores.shape == (meas.n,)

    def test_ones_score_higher_on_average(self, z_instance):
        truth, _, meas = z_instance
        scores = scores_from_measurements(meas)
        ones_mean = scores[truth.sigma == 1].mean()
        zeros_mean = scores[truth.sigma == 0].mean()
        assert ones_mean > zeros_mean
