"""Tests for the success-probability threshold search."""

import numpy as np
import pytest

import repro
from repro.experiments.search import (
    ThresholdEstimate,
    compare_algorithm_thresholds,
    success_probability_threshold,
)


class TestSuccessProbabilityThreshold:
    def test_finds_threshold_noiseless(self):
        est = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=10, seed=0
        )
        assert est.found
        # sanity: threshold should be in a plausible band
        assert 8 <= est.threshold_m <= 400
        assert est.probes  # bracket + bisection probes recorded

    def test_threshold_increases_with_noise(self):
        clean = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=10, seed=1
        )
        noisy = success_probability_threshold(
            200, 4, repro.ZChannel(0.4), trials=10, seed=1
        )
        assert noisy.threshold_m > clean.threshold_m

    def test_cap_reported_as_not_found(self):
        est = success_probability_threshold(
            200, 4, repro.ZChannel(0.3), trials=5, seed=2, m_init=2, m_cap=4
        )
        assert not est.found
        assert est.threshold_m is None

    def test_higher_level_needs_more_queries(self):
        low = success_probability_threshold(
            200, 4, repro.ZChannel(0.2), level=0.3, trials=15, seed=3
        )
        high = success_probability_threshold(
            200, 4, repro.ZChannel(0.2), level=0.9, trials=15, seed=3
        )
        assert high.threshold_m >= low.threshold_m - 8  # allow tolerance slack

    def test_tolerance_respected(self):
        est = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=8, seed=4, tolerance=16
        )
        # final bracket width <= tolerance implies probe grid is coarse
        assert est.found

    def test_validation(self):
        with pytest.raises(ValueError):
            success_probability_threshold(
                100, 3, repro.NoiselessChannel(), level=1.5
            )
        with pytest.raises(ValueError):
            success_probability_threshold(
                100, 3, repro.NoiselessChannel(), trials=0
            )


class TestProbeMemoization:
    def _fake_curve(self, calls, threshold=40):
        from repro.experiments.runner import SuccessCurve

        def curve(n, k, channel, m_values, **kwargs):
            m = int(m_values[0])
            calls.append(m)
            rate = 1.0 if m >= threshold else 0.0
            return SuccessCurve(
                algorithm="greedy",
                n=n,
                k=k,
                channel=channel.describe(),
                m_values=[m],
                success_rates=[rate],
                overlaps=[rate],
                trials=kwargs.get("trials", 1),
            )

        return curve

    def test_each_m_evaluated_once(self, monkeypatch):
        # Bracket and bisection together must never re-run the (fresh,
        # expensive) success_rate_curve sweep for an m already probed,
        # and `probes` records each m once.
        import repro.experiments.search as search

        calls = []
        monkeypatch.setattr(
            search, "success_rate_curve", self._fake_curve(calls)
        )
        est = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=5, seed=0, m_init=5
        )
        assert est.found
        assert len(calls) == len(set(calls))
        probe_ms = [p["m"] for p in est.probes]
        assert probe_ms == calls  # one record per evaluation, in order
        assert len(probe_ms) == len(set(probe_ms))

    def test_gamma_forwarded_to_probes(self, monkeypatch):
        import repro.experiments.search as search

        seen = []
        real = search.success_rate_curve

        def spying(n, k, channel, m_values, **kwargs):
            seen.append(kwargs.get("gamma"))
            return real(n, k, channel, m_values, **kwargs)

        monkeypatch.setattr(search, "success_rate_curve", spying)
        success_probability_threshold(
            120, 3, repro.NoiselessChannel(), trials=3, seed=0, gamma=16,
            m_cap=256,
        )
        assert seen and all(g == 16 for g in seen)

    def test_memo_hit_skips_evaluation_and_seed(self, monkeypatch):
        # Force a duplicate probe by re-entering the bracket value
        # during bisection (tolerance 1 with a tight cap) and check the
        # cache short-circuits: evaluations == distinct m's even when
        # rate_at is asked twice.
        import repro.experiments.search as search

        calls = []
        fake = self._fake_curve(calls, threshold=8)
        monkeypatch.setattr(search, "success_rate_curve", fake)
        est = success_probability_threshold(
            200,
            4,
            repro.NoiselessChannel(),
            trials=5,
            seed=0,
            m_init=8,
            tolerance=1,
        )
        assert est.threshold_m == 8
        assert len(calls) == len(set(calls))


class TestCompareAlgorithmThresholds:
    def test_amp_threshold_below_greedy(self):
        out = compare_algorithm_thresholds(
            400,
            4,
            repro.ZChannel(0.1),
            ["greedy", "amp"],
            trials=10,
            seed=5,
        )
        assert set(out) == {"greedy", "amp"}
        assert out["amp"].found and out["greedy"].found
        # Figure 6's headline, as thresholds.
        assert out["amp"].threshold_m <= out["greedy"].threshold_m

    def test_twostage_between_greedy_and_amp(self):
        out = compare_algorithm_thresholds(
            400,
            4,
            repro.ZChannel(0.2),
            ["greedy", "twostage"],
            trials=10,
            seed=6,
        )
        assert out["twostage"].threshold_m <= out["greedy"].threshold_m + 8
