"""Tests for the success-probability threshold search."""

import numpy as np
import pytest

import repro
from repro.experiments.search import (
    ThresholdEstimate,
    compare_algorithm_thresholds,
    success_probability_threshold,
)


class TestSuccessProbabilityThreshold:
    def test_finds_threshold_noiseless(self):
        est = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=10, seed=0
        )
        assert est.found
        # sanity: threshold should be in a plausible band
        assert 8 <= est.threshold_m <= 400
        assert est.probes  # bracket + bisection probes recorded

    def test_threshold_increases_with_noise(self):
        clean = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=10, seed=1
        )
        noisy = success_probability_threshold(
            200, 4, repro.ZChannel(0.4), trials=10, seed=1
        )
        assert noisy.threshold_m > clean.threshold_m

    def test_cap_reported_as_not_found(self):
        est = success_probability_threshold(
            200, 4, repro.ZChannel(0.3), trials=5, seed=2, m_init=2, m_cap=4
        )
        assert not est.found
        assert est.threshold_m is None

    def test_higher_level_needs_more_queries(self):
        low = success_probability_threshold(
            200, 4, repro.ZChannel(0.2), level=0.3, trials=15, seed=3
        )
        high = success_probability_threshold(
            200, 4, repro.ZChannel(0.2), level=0.9, trials=15, seed=3
        )
        assert high.threshold_m >= low.threshold_m - 8  # allow tolerance slack

    def test_tolerance_respected(self):
        est = success_probability_threshold(
            200, 4, repro.NoiselessChannel(), trials=8, seed=4, tolerance=16
        )
        # final bracket width <= tolerance implies probe grid is coarse
        assert est.found

    def test_validation(self):
        with pytest.raises(ValueError):
            success_probability_threshold(
                100, 3, repro.NoiselessChannel(), level=1.5
            )
        with pytest.raises(ValueError):
            success_probability_threshold(
                100, 3, repro.NoiselessChannel(), trials=0
            )


class TestCompareAlgorithmThresholds:
    def test_amp_threshold_below_greedy(self):
        out = compare_algorithm_thresholds(
            400,
            4,
            repro.ZChannel(0.1),
            ["greedy", "amp"],
            trials=10,
            seed=5,
        )
        assert set(out) == {"greedy", "amp"}
        assert out["amp"].found and out["greedy"].found
        # Figure 6's headline, as thresholds.
        assert out["amp"].threshold_m <= out["greedy"].threshold_m

    def test_twostage_between_greedy_and_amp(self):
        out = compare_algorithm_thresholds(
            400,
            4,
            repro.ZChannel(0.2),
            ["greedy", "twostage"],
            trials=10,
            seed=6,
        )
        assert out["twostage"].threshold_m <= out["greedy"].threshold_m + 8
