"""Tests for the online decode service (PR 10).

Three layers:

* unit tests for the error taxonomy, session state machine, durable
  store, and the micro-batching scheduler's robustness ladder
  (shed / degrade / deadline), all in-process;
* end-to-end tests against a real ``repro serve`` subprocess through
  :class:`repro.service.client.ServiceClient`;
* the pinned chaos test: deadline expiry, load shedding, and a
  mid-stream SIGKILL + restart are all injected, and every surviving
  session's decode output must stay **bit-identical** to an
  unperturbed serial decoder, with every shed/degraded/expired request
  reported through the structured taxonomy — never a silent drop or a
  hang.
"""

import asyncio
import threading

import numpy as np
import pytest

import repro
from repro.amp import AMPConfig, run_amp
from repro.experiments.worker import AuthError
from repro.service.batcher import DecodeBatcher
from repro.service.client import ServiceClient
from repro.service.errors import (
    DeadlineExceeded,
    InvalidRequest,
    Overloaded,
    ServiceError,
    SessionConflict,
    UnknownSession,
    error_from_wire,
)
from repro.service.session import Session, SessionParams, channel_to_spec
from repro.service.store import SessionStore
from repro.service.testing import start_server


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def make_session(session_id, n, k, channel_spec, seed, gamma=None):
    params = SessionParams.create(n, gamma, channel_spec, "half_k")
    rng = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, rng)
    return Session(session_id, params, truth.sigma), rng


def measured_queries(session, rng, count):
    """Sample + measure ``count`` queries for a session (client side)."""
    sigma = session.truth.sigma.astype(np.int64)
    queries = []
    for _ in range(count):
        agents, counts = repro.sample_query(
            session.params.n, session.params.gamma, rng
        )
        total = int(np.dot(counts, sigma[agents]))
        result = float(
            session.channel.measure(
                np.asarray([total]), int(counts.sum()), rng
            )[0]
        )
        queries.append((agents.tolist(), counts.tolist(), result))
    return queries


def local_amp_reference(session):
    """Standalone run_amp on a session's accumulated measurements."""
    builder = repro.PoolingGraphBuilder(
        session.params.n, session.params.gamma
    )
    stream = session.stream
    for i in range(stream.m_done):
        lo, hi = int(stream.indptr[i]), int(stream.indptr[i + 1])
        builder.add_query(stream.agents[lo:hi], stream.counts[lo:hi])
    meas = repro.Measurements(
        graph=builder.build(),
        truth=session.truth,
        channel=session.channel,
        results=np.array(stream.results),
    )
    return run_amp(meas, config=AMPConfig(track_history=False))


# ---------------------------------------------------------------------------
# error taxonomy
# ---------------------------------------------------------------------------


class TestErrorTaxonomy:
    def test_retryable_bits(self):
        assert Overloaded("x").retryable
        assert DeadlineExceeded("x").retryable
        assert not InvalidRequest("x").retryable
        assert not UnknownSession("x").retryable
        assert not SessionConflict("x").retryable

    def test_wire_round_trip(self):
        for exc in (Overloaded("busy"), InvalidRequest("bad")):
            back = error_from_wire(exc.to_wire())
            assert type(back) is type(exc)
            assert back.retryable == exc.retryable
            assert str(exc) in str(back)

    def test_unknown_code_keeps_announced_retryability(self):
        err = error_from_wire(
            {"code": "from_the_future", "message": "?", "retryable": True}
        )
        assert isinstance(err, ServiceError)
        assert err.retryable


# ---------------------------------------------------------------------------
# session state machine
# ---------------------------------------------------------------------------


class TestSessionParams:
    def test_channel_spec_round_trip(self):
        for channel in (
            repro.NoiselessChannel(),
            repro.ZChannel(0.2),
            repro.NoisyChannel(0.1, 0.05),
            repro.GaussianQueryNoise(2.0),
        ):
            spec = channel_to_spec(channel)
            params = SessionParams.create(100, None, spec, "half_k")
            assert channel_to_spec(params.channel) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n": 0},
            {"gamma": 0},
            {"centering": "nope"},
            {"channel_spec": {"kind": "nope"}},
            {"channel_spec": {"kind": "z", "p": 2.0}},
        ],
    )
    def test_validation(self, kwargs):
        base = {
            "n": 50,
            "gamma": None,
            "channel_spec": {"kind": "noiseless"},
            "centering": "half_k",
        }
        base.update(kwargs)
        with pytest.raises(InvalidRequest):
            SessionParams.create(
                base["n"], base["gamma"], base["channel_spec"],
                base["centering"],
            )


class TestSession:
    def test_ingest_is_idempotent(self):
        session, rng = make_session("s", 60, 3, {"kind": "z", "p": 0.1}, 0)
        queries = measured_queries(session, rng, 5)
        m1 = session.ingest("req-0", queries)
        scores = np.array(session.decoder.scores)
        # A retransmitted frame is acked from the applied map.
        m2 = session.ingest("req-0", queries)
        assert m1 == m2 == 5
        assert session.m == 5
        assert np.array_equal(session.decoder.scores, scores)

    def test_ingest_rejects_malformed_queries(self):
        session, _ = make_session("s", 60, 3, {"kind": "noiseless"}, 0)
        with pytest.raises(InvalidRequest):
            session.ingest("r1", [([0, 1], [1], 3.0)])  # shape mismatch
        with pytest.raises(InvalidRequest):
            session.ingest("r2", [([0], [5], 3.0)])  # sum != gamma
        assert session.m == 0

    def test_record_round_trip_is_bit_identical(self):
        session, rng = make_session(
            "s", 80, 4, {"kind": "gaussian", "lam": 1.0}, 1
        )
        session.ingest("a", measured_queries(session, rng, 12))
        session.ingest("b", measured_queries(session, rng, 7))
        restored = Session.from_record(session.record())
        assert restored.m == session.m
        assert restored.applied == session.applied
        assert np.array_equal(restored.stream.indptr, session.stream.indptr)
        assert np.array_equal(restored.stream.agents, session.stream.agents)
        assert np.array_equal(restored.stream.counts, session.stream.counts)
        assert np.array_equal(
            restored.stream.results, session.stream.results
        )
        # Per-query replay reruns the identical float accumulation.
        assert np.array_equal(
            restored.decoder.scores, session.decoder.scores
        )
        assert restored.decoder.separation() == session.decoder.separation()

    def test_restored_session_grows_identically(self):
        # checkpoint -> restore -> grow further == never interrupted
        straight, rng = make_session("s", 70, 3, {"kind": "z", "p": 0.2}, 2)
        queries = measured_queries(straight, rng, 30)
        straight.ingest("all", queries)

        broken, _ = make_session("s", 70, 3, {"kind": "z", "p": 0.2}, 2)
        broken.ingest("first", queries[:18])
        resumed = Session.from_record(broken.record())
        resumed.ingest("rest", queries[18:])
        assert np.array_equal(
            resumed.decoder.scores, straight.decoder.scores
        )
        assert np.array_equal(
            resumed.stream.results, straight.stream.results
        )

    def test_greedy_response_shape(self):
        session, rng = make_session("sid", 60, 3, {"kind": "noiseless"}, 3)
        session.ingest("r", measured_queries(session, rng, 40))
        response = session.greedy_response(degraded=True)
        assert response["session_id"] == "sid"
        assert response["algorithm"] == "greedy"
        assert response["m"] == 40
        assert response["degraded"] is True
        assert response["separated"] == (response["separation"] > 0)


class TestSessionStore:
    def test_save_load_delete(self, tmp_path):
        store = SessionStore(tmp_path)
        session, rng = make_session("alpha", 50, 2, {"kind": "noiseless"}, 4)
        session.ingest("r", measured_queries(session, rng, 6))
        store.save(session)
        other, _ = make_session("beta", 50, 2, {"kind": "noiseless"}, 5)
        store.save(other)

        loaded = SessionStore(tmp_path).load_all()
        assert sorted(loaded) == ["alpha", "beta"]
        assert loaded["alpha"].m == 6
        assert np.array_equal(
            loaded["alpha"].decoder.scores, session.decoder.scores
        )
        store.delete("alpha")
        assert sorted(SessionStore(tmp_path).load_all()) == ["beta"]

    def test_hostile_session_ids_stay_in_root(self, tmp_path):
        store = SessionStore(tmp_path)
        session, _ = make_session(
            "../../escape attempt", 30, 2, {"kind": "noiseless"}, 6
        )
        store.save(session)
        files = list(tmp_path.glob("*.session.json"))
        assert len(files) == 1
        assert files[0].resolve().parent == tmp_path.resolve()


# ---------------------------------------------------------------------------
# micro-batching scheduler: robustness ladder + bit-identity
# ---------------------------------------------------------------------------


class TestDecodeBatcher:
    def _sessions(self, count, m, seed0=10):
        sessions = []
        for i in range(count):
            session, rng = make_session(
                f"b{i}", 90, 4, {"kind": "z", "p": 0.1}, seed0 + i
            )
            session.ingest("fill", measured_queries(session, rng, m))
            sessions.append(session)
        return sessions

    def test_batched_decode_bit_identical_to_run_amp(self):
        sessions = self._sessions(3, 70)

        async def scenario():
            batcher = DecodeBatcher(
                max_queue=16, degrade_depth=16, max_batch=8
            )
            batcher.start()
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(
                    batcher.submit(s, s.m - 5 * i, return_scores=True)
                )
                for i, s in enumerate(sessions)
            ]
            responses = await asyncio.gather(*tasks)
            await batcher.stop()
            return responses, dict(batcher.counters)

        responses, counters = asyncio.run(scenario())
        # All three submissions landed before the scheduler drained, so
        # they stacked into one ragged block-diagonal AMP call.
        assert counters["batches"] == 1
        assert counters["batched_requests"] == 3
        for i, (session, response) in enumerate(zip(sessions, responses)):
            assert response["batch_size"] == 3
            assert response["degraded"] is False
            m = session.m - 5 * i
            # truncate the reference to the requested prefix
            ref_stream = session.snapshot_stream(m)
            builder = repro.PoolingGraphBuilder(
                session.params.n, session.params.gamma
            )
            for j in range(m):
                lo = int(ref_stream.indptr[j])
                hi = int(ref_stream.indptr[j + 1])
                builder.add_query(
                    ref_stream.agents[lo:hi], ref_stream.counts[lo:hi]
                )
            meas = repro.Measurements(
                graph=builder.build(),
                truth=session.truth,
                channel=session.channel,
                results=np.array(ref_stream.results[:m]),
            )
            reference = run_amp(meas, config=AMPConfig(track_history=False))
            assert response["exact"] == bool(reference.exact)
            assert np.array_equal(
                np.asarray(response["scores"]), reference.scores
            )

    def test_degrades_at_depth(self):
        sessions = self._sessions(2, 30)

        async def scenario():
            batcher = DecodeBatcher(max_queue=8, degrade_depth=1)
            batcher.start()
            loop = asyncio.get_running_loop()
            first = loop.create_task(batcher.submit(sessions[0], 30))
            second = loop.create_task(batcher.submit(sessions[1], 30))
            r1, r2 = await asyncio.gather(first, second)
            await batcher.stop()
            return r1, r2, dict(batcher.counters)

        r1, r2, counters = asyncio.run(scenario())
        # Both were admitted; at wave formation the backlog exceeded the
        # degrade depth, so the newer request was answered from the
        # running greedy scores — immediately, flagged, never silently —
        # while the older kept its AMP promise.
        assert r1["algorithm"] == "amp" and r1["degraded"] is False
        assert r2["algorithm"] == "greedy" and r2["degraded"] is True
        assert counters["degraded"] == 1
        assert counters["decoded"] == 1

    def test_sheds_when_queue_full(self):
        sessions = self._sessions(3, 30)

        async def scenario():
            batcher = DecodeBatcher(max_queue=2, degrade_depth=2)
            batcher.start()
            loop = asyncio.get_running_loop()
            tasks = [
                loop.create_task(batcher.submit(s, 30)) for s in sessions
            ]
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            await batcher.stop()
            return outcomes, dict(batcher.counters)

        outcomes, counters = asyncio.run(scenario())
        shed = [o for o in outcomes if isinstance(o, Overloaded)]
        served = [o for o in outcomes if isinstance(o, dict)]
        assert len(shed) == 1 and shed[0].retryable
        assert len(served) == 2
        assert counters["shed"] == 1

    def test_deadline_expired_while_queued(self):
        (session,) = self._sessions(1, 30)

        async def scenario():
            batcher = DecodeBatcher()
            batcher.start()
            loop = asyncio.get_running_loop()
            expired = loop.time() - 1.0
            try:
                with pytest.raises(DeadlineExceeded):
                    await batcher.submit(session, 30, deadline=expired)
            finally:
                await batcher.stop()
            return dict(batcher.counters)

        counters = asyncio.run(scenario())
        assert counters["deadline_expired"] == 1
        assert counters["decoded"] == 0

    def test_stop_fails_pending_requests(self):
        (session,) = self._sessions(1, 10)

        async def scenario():
            batcher = DecodeBatcher()
            batcher.start()
            response = await batcher.submit(session, 10)
            await batcher.stop()
            with pytest.raises(Overloaded):
                await batcher.submit(session, 10)
            return response

        response = asyncio.run(scenario())
        assert response["algorithm"] == "amp"


# ---------------------------------------------------------------------------
# end-to-end against a real server subprocess
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    proc = start_server(tmp_path_factory.mktemp("service-state"))
    yield proc
    proc.stop()


def open_and_fill(client, session_id, n, k, channel, seed, m):
    rng = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, rng)
    sigma = truth.sigma.astype(np.int64)
    client.open_session(session_id, n, truth.sigma, channel=channel)
    gamma = repro.default_gamma(n)
    queries = []
    for _ in range(m):
        agents, counts = repro.sample_query(n, gamma, rng)
        total = int(np.dot(counts, sigma[agents]))
        result = float(
            channel.measure(np.asarray([total]), int(counts.sum()), rng)[0]
        )
        queries.append((agents.tolist(), counts.tolist(), result))
    client.ingest(session_id, queries)
    return truth, queries


def reference_decode(n, truth, channel, queries):
    builder = repro.PoolingGraphBuilder(n)
    results = []
    for agents, counts, result in queries:
        builder.add_query(np.asarray(agents), np.asarray(counts))
        results.append(result)
    meas = repro.Measurements(
        graph=builder.build(),
        truth=truth,
        channel=channel,
        results=np.asarray(results, dtype=np.float64),
    )
    amp = run_amp(meas, config=AMPConfig(track_history=False))
    decoder = repro.IncrementalDecoder(truth, channel)
    for agents, counts, result in queries:
        decoder.ingest_query(
            np.asarray(agents, dtype=np.int64),
            np.asarray(counts, dtype=np.int64),
            float(result),
        )
    return amp, decoder


class TestEndToEnd:
    def test_probes(self, server):
        with ServiceClient(server.host, server.port) as client:
            assert client.healthz()["status"] == "alive"
            ready = client.readyz()
            assert ready["ready"] is True
            stats = client.stats()
            assert {"decoded", "shed", "degraded", "deadline_expired"} \
                <= set(stats)

    def test_decode_matches_local_run_amp(self, server):
        n, k, m = 80, 4, 70
        channel = repro.ZChannel(0.1)
        with ServiceClient(server.host, server.port) as client:
            truth, queries = open_and_fill(
                client, "e2e-bitident", n, k, channel, 20, m
            )
            amp = client.decode(
                "e2e-bitident", algorithm="amp", return_scores=True
            )
            greedy = client.decode("e2e-bitident", algorithm="greedy")
            status = client.status("e2e-bitident")
        ref_amp, ref_dec = reference_decode(n, truth, channel, queries)
        assert status["m"] == m and status["k"] == k
        assert amp["exact"] == bool(ref_amp.exact)
        assert np.array_equal(np.asarray(amp["scores"]), ref_amp.scores)
        assert greedy["separated"] == ref_dec.is_successful()
        assert greedy["separation"] == float(ref_dec.separation())

    def test_ingest_retransmit_is_acked_not_reapplied(self, server):
        n, k = 60, 3
        channel = repro.NoiselessChannel()
        with ServiceClient(server.host, server.port) as client:
            truth, queries = open_and_fill(
                client, "e2e-idem", n, k, channel, 21, 10
            )
            request_id = client.request_id()
            first = client.ingest(
                "e2e-idem", queries[:5], request_id=request_id
            )
            replay = client.ingest(
                "e2e-idem", queries[:5], request_id=request_id
            )
            assert first["m"] == replay["m"] == 15
            assert not first["replayed"] and replay["replayed"]
            assert client.status("e2e-idem")["m"] == 15

    def test_decode_request_id_is_idempotent(self, server):
        channel = repro.ZChannel(0.05)
        with ServiceClient(server.host, server.port) as client:
            open_and_fill(client, "e2e-didem", 60, 3, channel, 22, 40)
            rid = client.request_id()
            a = client.decode(
                "e2e-didem", return_scores=True, request_id=rid
            )
            b = client.decode(
                "e2e-didem", return_scores=True, request_id=rid
            )
            assert a == b

    def test_session_conflict_and_idempotent_reopen(self, server):
        n, k = 40, 2
        rng = np.random.default_rng(23)
        truth = repro.sample_ground_truth(n, k, rng)
        channel = repro.NoiselessChannel()
        with ServiceClient(server.host, server.port) as client:
            first = client.open_session(
                "e2e-conflict", n, truth.sigma, channel=channel
            )
            again = client.open_session(
                "e2e-conflict", n, truth.sigma, channel=channel
            )
            assert not first["resumed"] and again["resumed"]
            other = repro.sample_ground_truth(n, k + 1, rng)
            with pytest.raises(SessionConflict):
                client.open_session(
                    "e2e-conflict", n, other.sigma, channel=channel
                )

    def test_terminal_errors(self, server):
        with ServiceClient(server.host, server.port) as client:
            with pytest.raises(UnknownSession):
                client.status("never-opened")
            with pytest.raises(InvalidRequest):
                client.call({"op": "no_such_op"})
            rng = np.random.default_rng(24)
            truth = repro.sample_ground_truth(30, 2, rng)
            client.open_session(
                "e2e-empty", 30, truth.sigma,
                channel=repro.NoiselessChannel(),
            )
            with pytest.raises(InvalidRequest):
                client.decode("e2e-empty", algorithm="amp")

    def test_wrong_token_is_rejected(self, server):
        with pytest.raises(AuthError):
            ServiceClient(
                server.host, server.port,
                token="definitely-wrong", retry_budget=2.0,
            ).connect()


# ---------------------------------------------------------------------------
# the pinned chaos test
# ---------------------------------------------------------------------------


class TestChaos:
    N, K, M_TOTAL, BLOCKS, JOBS = 100, 4, 60, 6, 4

    def _client_run(self, host, port, index, barrier, results, failures):
        try:
            session_id = f"chaos-{index}"
            channel = repro.ZChannel(0.1)
            rng = np.random.default_rng(100 + index)
            truth = repro.sample_ground_truth(self.N, self.K, rng)
            sigma = truth.sigma.astype(np.int64)
            gamma = repro.default_gamma(self.N)
            queries = []
            for _ in range(self.M_TOTAL):
                agents, counts = repro.sample_query(self.N, gamma, rng)
                total = int(np.dot(counts, sigma[agents]))
                result = float(
                    channel.measure(
                        np.asarray([total]), int(counts.sum()), rng
                    )[0]
                )
                queries.append((agents.tolist(), counts.tolist(), result))

            with ServiceClient(host, port, retry_budget=60.0) as client:
                client.open_session(
                    session_id, self.N, truth.sigma, channel=channel
                )
                per = self.M_TOTAL // self.BLOCKS
                for b in range(self.BLOCKS):
                    block = queries[b * per:(b + 1) * per]
                    ack = client.ingest(session_id, block)
                    assert ack["m"] == (b + 1) * per, ack
                    if b == 1:
                        # Every client has acked two blocks and is
                        # mid-stream; rendezvous with the killer, then
                        # keep streaming into the crash.
                        barrier.wait(timeout=120)
            results[index] = (truth, channel, queries)
        except BaseException as exc:  # surfaced by the main thread
            failures[index] = exc

    def test_chaos_sigkill_deadlines_shedding_bit_identical(self, tmp_path):
        state = tmp_path / "state"
        env = {
            "REPRO_SERVICE_MAX_QUEUE": "2",
            "REPRO_SERVICE_DEGRADE_DEPTH": "1",
        }
        server = start_server(state, env=env)
        host, port = server.host, server.port
        barrier = threading.Barrier(self.JOBS + 1)
        results, failures = {}, {}
        threads = [
            threading.Thread(
                target=self._client_run,
                args=(host, port, i, barrier, results, failures),
            )
            for i in range(self.JOBS)
        ]
        for t in threads:
            t.start()

        try:
            # -- fault 1: SIGKILL the server mid-stream, then restart it
            # on the same port and state dir. Clients retry through it:
            # transport errors reconnect with backoff, unacked ingests
            # are retransmitted under their original request ids.
            barrier.wait(timeout=120)
            server.kill()
            server = start_server(state, port=port, env=env)
            for t in threads:
                t.join(timeout=120)
                assert not t.is_alive(), "client hung — robustness violated"
            assert not failures, failures
            assert len(results) == self.JOBS

            # -- fault 2: deadline expiry, injected deterministically.
            with ServiceClient(host, port, retry_budget=1.0) as client:
                with pytest.raises(DeadlineExceeded):
                    client.decode("chaos-0", deadline=1e-9)

            # -- fault 3: load shedding / degradation under a burst.
            # max_queue=2, degrade_depth=1: concurrent decode bursts
            # must trip the ladder; shed requests are retried by the
            # client, degraded ones come back flagged.
            degraded_seen = shed_seen = 0
            for _ in range(10):
                burst_results = []

                def burst(idx):
                    with ServiceClient(
                        host, port, retry_budget=60.0
                    ) as cli:
                        for _ in range(4):
                            burst_results.append(
                                cli.decode(f"chaos-{idx % self.JOBS}")
                            )

                burst_threads = [
                    threading.Thread(target=burst, args=(i,))
                    for i in range(self.JOBS)
                ]
                for t in burst_threads:
                    t.start()
                for t in burst_threads:
                    t.join(timeout=120)
                    assert not t.is_alive(), "burst client hung"
                with ServiceClient(host, port) as cli:
                    stats = cli.stats()
                degraded_seen = stats["degraded"]
                shed_seen = stats["shed"]
                assert all(
                    r["algorithm"] in ("amp", "greedy")
                    for r in burst_results
                )
                if degraded_seen and shed_seen:
                    break
            assert degraded_seen >= 1, "degradation never engaged"
            assert shed_seen >= 1, "load shedding never engaged"
            assert stats["deadline_expired"] >= 1

            # -- the pinned assertion: after all injected faults, every
            # surviving session decodes bit-identically to an
            # unperturbed serial decoder on the same query sequence.
            with ServiceClient(host, port) as client:
                for i in range(self.JOBS):
                    session_id = f"chaos-{i}"
                    truth, channel, queries = results[i]
                    status = client.status(session_id)
                    assert status["m"] == self.M_TOTAL  # no double-apply
                    amp = client.decode(
                        session_id, algorithm="amp", return_scores=True
                    )
                    greedy = client.decode(session_id, algorithm="greedy")
                    ref_amp, ref_dec = reference_decode(
                        self.N, truth, channel, queries
                    )
                    assert amp["degraded"] is False
                    assert amp["exact"] == bool(ref_amp.exact)
                    assert np.array_equal(
                        np.asarray(amp["scores"]), ref_amp.scores
                    )
                    assert greedy["separation"] == float(
                        ref_dec.separation()
                    )
        finally:
            barrier.abort()  # release any client still at the rendezvous
            server.stop()
