"""Shared-memory dispatch arena: lifecycle, protocol, sweep identity.

The contract under test (see :mod:`repro.experiments.shm`): with
``shm=True`` the process backend ships each chunk as ``(arena name,
spec ref, seeds ref, kind, m)`` and the workers read the pickled
payloads out of one driver-owned shared-memory segment — the same
objects the pipe would have delivered, so sweep results are
bit-identical to the serial backend. The arena lives exactly one
executor run (unlinked in a ``finally``), leaked arenas are disposed
by an atexit hook, and worker attaches never adopt the segment into
the resource tracker.
"""

import pickle

import pytest

import repro
from repro.experiments import shm as shm_module
from repro.experiments.scheduler import SweepExecutor, SweepPlan
from repro.experiments.shm import SHM_ENV, SweepArena, resolve_shm


# -- resolution ----------------------------------------------------------


def test_resolve_explicit_beats_env(monkeypatch):
    monkeypatch.setenv(SHM_ENV, "1")
    assert resolve_shm(False) is False
    monkeypatch.delenv(SHM_ENV)
    assert resolve_shm(True) is True


@pytest.mark.parametrize("raw", ["1", "true", "YES", " on "])
def test_resolve_env_truthy(monkeypatch, raw):
    monkeypatch.setenv(SHM_ENV, raw)
    assert resolve_shm() is True


@pytest.mark.parametrize("raw", [None, "", "0", "false", "off"])
def test_resolve_env_falsy(monkeypatch, raw):
    if raw is None:
        monkeypatch.delenv(SHM_ENV, raising=False)
    else:
        monkeypatch.setenv(SHM_ENV, raw)
    assert resolve_shm() is False


def test_resolve_env_garbage_raises(monkeypatch):
    # A typo in the switch must not silently disable the arena.
    monkeypatch.setenv(SHM_ENV, "2")
    with pytest.raises(ValueError, match="REPRO_SHM"):
        resolve_shm()


# -- arena lifecycle -----------------------------------------------------


def test_arena_refs_and_blob_roundtrip():
    blobs = [b"alpha", b"", b"gamma-blob"]
    with SweepArena(blobs) as arena:
        assert arena.refs == [(0, 5), (5, 0), (5, 10)]
        assert arena.size == 15
        for blob, ref in zip(blobs, arena.refs):
            assert shm_module.read_blob(arena.name, ref) == blob


def test_from_payloads_roundtrip_read_spec():
    spec = {"n": 128, "channel": repro.ZChannel(0.1), "kind": "demo"}
    with SweepArena.from_payloads([spec, (1, 2, 3)]) as arena:
        decoded = shm_module.read_spec(arena.name, arena.refs[0])
        assert decoded["n"] == 128
        assert repr(decoded["channel"]) == repr(spec["channel"])
        # The decoded-spec cache returns the same object per worker.
        assert shm_module.read_spec(arena.name, arena.refs[0]) is decoded
        seeds = pickle.loads(
            shm_module.read_blob(arena.name, arena.refs[1])
        )
        assert seeds == (1, 2, 3)


def test_dispose_unlinks_and_is_idempotent():
    arena = SweepArena([b"payload"])
    name = arena.name
    assert name in shm_module._live_arenas
    arena.dispose()
    assert name not in shm_module._live_arenas
    arena.dispose()  # second disposal is a no-op
    from multiprocessing import shared_memory

    with pytest.raises(FileNotFoundError):
        shared_memory.SharedMemory(name=name)


def test_empty_arena_is_valid():
    with SweepArena([]) as arena:
        assert arena.size == 0
        assert arena.refs == []


def test_leak_guard_disposes_registered_arenas():
    arena = SweepArena([b"leaked"])
    name = arena.name
    try:
        shm_module._dispose_leaked_arenas()
        assert name not in shm_module._live_arenas
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
    finally:
        arena.dispose()  # no-op if the guard worked


# -- sweep identity ------------------------------------------------------


def _mixed_plan():
    plan = SweepPlan()
    plan.add_required_queries(
        150, 4, repro.ZChannel(0.1), trials=4, seed=11, check_every=4
    )
    plan.add_success_curve(
        120, 3, repro.NoiselessChannel(), [40, 80], trials=4, seed=7
    )
    plan.add_required_queries(
        150, 3, repro.ZChannel(0.05), trials=4, seed=3, algorithm="amp",
        check_every=10, max_m=300,
    )
    return plan


def test_shm_process_sweep_identical_to_serial():
    serial = _mixed_plan().run(backend="serial")
    shm = _mixed_plan().run(backend="process", workers=2, shm=True)
    assert repr(shm) == repr(serial)
    # The executor unlinked its arena in the finally block.
    assert not shm_module._live_arenas


def test_shm_env_route_reaches_executor(monkeypatch):
    monkeypatch.setenv(SHM_ENV, "1")
    executor = SweepExecutor(backend="process", workers=2)
    assert executor.shm is True
    serial = _mixed_plan().run(backend="serial")
    assert repr(executor.run(_mixed_plan())) == repr(serial)
    assert not shm_module._live_arenas


def test_shm_flag_is_inert_on_serial_backend():
    serial = _mixed_plan().run(backend="serial")
    flagged = _mixed_plan().run(backend="serial", shm=True)
    assert repr(flagged) == repr(serial)
    assert not shm_module._live_arenas


def test_aligned_arena_ndarray_blob_read_array_roundtrip():
    import numpy as np

    arr = np.arange(13, dtype=np.float64)
    mat = np.arange(12, dtype=np.int8).reshape(3, 4)
    with SweepArena([b"head", arr, mat], align=64) as arena:
        # Every blob offset sits on the alignment boundary.
        assert all(off % 64 == 0 for off, _ in arena.refs)
        got = shm_module.read_array(
            arena.name, arena.refs[1], arr.dtype.str, arr.shape
        )
        np.testing.assert_array_equal(got, arr)
        assert not got.flags.writeable
        got2 = shm_module.read_array(
            arena.name, arena.refs[2], mat.dtype.str, mat.shape
        )
        np.testing.assert_array_equal(got2, mat)


# -- driver-prepared graph dispatch --------------------------------------


class _FakeTask:
    def __init__(self, seeds, m=None):
        self.seeds = tuple(seeds)
        self.m = m


def _poison(monkeypatch, batch_amp, *names):
    def boom(*args, **kwargs):
        raise AssertionError("worker-side graph build ran on prepared path")

    for name in names:
        monkeypatch.setattr(batch_amp, name, boom)


def test_prepared_fixed_m_chunk_skips_worker_sampling(monkeypatch):
    """An eligible AMP curve chunk decodes from published buffers alone."""
    from repro.amp import batch_amp
    from repro.experiments import parallel
    from repro.experiments.scheduler import _prepared_arrays

    plan = SweepPlan()
    plan.add_success_curve(
        120, 3, repro.ZChannel(0.1), [40], trials=5, seed=7,
        algorithm="amp",
    )
    cell = plan._cells[0]
    seeds = cell.per_m_seeds[0]
    expected = parallel._fixed_m_chunk(cell.spec, 40, list(seeds))
    prep = _prepared_arrays(cell, _FakeTask(seeds, m=40))
    assert prep is not None
    with SweepArena(
        [pickle.dumps(cell.spec)] + [prep[k] for k in sorted(prep)],
        align=64,
    ) as arena:
        refs = {
            key: (arena.refs[1 + i], prep[key].dtype.str, prep[key].shape)
            for i, key in enumerate(sorted(prep))
        }
        # The submission payload is refs only: small and seed-free.
        assert len(pickle.dumps(refs)) < 1024
        _poison(
            monkeypatch, batch_amp,
            "sample_ground_truth", "sample_pooling_graph_batch",
            "_stack_blocks", "measure",
        )
        got = shm_module.shm_graph_chunk(
            arena.name, arena.refs[0], refs, cell.kind, 40
        )
    assert got == expected


def test_prepared_required_chunk_skips_worker_sampling(monkeypatch):
    """An eligible AMP required chunk replays driver-grown streams."""
    from repro.amp import batch_amp
    from repro.experiments import parallel
    from repro.experiments.scheduler import _prepared_arrays

    plan = SweepPlan()
    plan.add_required_queries(
        120, 3, repro.ZChannel(0.05), trials=3, seed=13, algorithm="amp",
        check_every=8, max_m=200,
    )
    cell = plan._cells[0]
    expected = parallel._required_queries_chunk(cell.spec, list(cell.seeds))
    prep = _prepared_arrays(cell, _FakeTask(cell.seeds))
    assert prep is not None
    with SweepArena(
        [pickle.dumps(cell.spec)] + [prep[k] for k in sorted(prep)],
        align=64,
    ) as arena:
        refs = {
            key: (arena.refs[1 + i], prep[key].dtype.str, prep[key].shape)
            for i, key in enumerate(sorted(prep))
        }
        assert len(pickle.dumps(refs)) < 1024
        # No stream construction or sampling in the worker: probe
        # decoding stacks prefixes of the replayed buffers only.
        _poison(
            monkeypatch, batch_amp,
            "sample_ground_truth", "MeasurementStream",
        )
        got = shm_module.shm_graph_chunk(
            arena.name, arena.refs[0], refs, cell.kind, None
        )
    assert got == expected


def test_ineligible_tasks_keep_seed_dispatch():
    """Greedy, corrupted, and oversized chunks fall back to seeds."""
    from repro.core.corruption import CorruptionModel
    from repro.experiments.scheduler import (
        _PREPARED_ELEMENTS_CAP,
        _prepared_arrays,
    )

    plan = SweepPlan()
    plan.add_success_curve(
        120, 3, repro.ZChannel(0.1), [40], trials=3, seed=1
    )  # greedy: no batch_mode "amp"
    plan.add_required_queries(
        120, 3, repro.ZChannel(0.1), trials=3, seed=2
    )  # greedy required scan
    plan.add_required_queries(
        120, 3, repro.ZChannel(0.1), trials=3, seed=4, algorithm="amp",
        corruption=CorruptionModel(flip_rate=0.05),
    )  # corrupted: generic scan owns the corruption realization
    curve, req, corrupted = plan._cells
    assert _prepared_arrays(curve, _FakeTask(curve.per_m_seeds[0], m=40)) is None
    assert _prepared_arrays(req, _FakeTask(req.seeds)) is None
    assert _prepared_arrays(corrupted, _FakeTask(corrupted.seeds)) is None

    big = SweepPlan()
    big.add_success_curve(
        120, 3, repro.ZChannel(0.1), [40], trials=3, seed=5,
        algorithm="amp",
    )
    cell = big._cells[0]
    import repro.experiments.scheduler as sched

    try:
        sched._PREPARED_ELEMENTS_CAP = 1  # force the memory gate shut
        assert (
            _prepared_arrays(cell, _FakeTask(cell.per_m_seeds[0], m=40))
            is None
        )
    finally:
        sched._PREPARED_ELEMENTS_CAP = _PREPARED_ELEMENTS_CAP


def test_shm_amp_sweep_identical_to_serial():
    """End-to-end: prepared AMP cells fold bit-identically to serial."""

    def _amp_plan():
        plan = SweepPlan()
        plan.add_success_curve(
            120, 3, repro.NoiselessChannel(), [40, 80], trials=4, seed=9,
            algorithm="amp",
        )
        plan.add_required_queries(
            120, 3, repro.ZChannel(0.05), trials=4, seed=3, algorithm="amp",
            check_every=10, max_m=300,
        )
        return plan

    serial = _amp_plan().run(backend="serial")
    shm = _amp_plan().run(backend="process", workers=2, shm=True)
    assert repr(shm) == repr(serial)
    assert not shm_module._live_arenas


def test_shm_chunk_entry_point_runs_required_queries():
    plan = SweepPlan()
    plan.add_required_queries(
        120, 3, repro.NoiselessChannel(), trials=2, seed=5, check_every=4
    )
    cell = plan._cells[0]
    with SweepArena.from_payloads(
        [cell.spec, tuple(cell.seeds)]
    ) as arena:
        outcomes = shm_module.shm_chunk(
            arena.name, arena.refs[0], arena.refs[1], cell.kind, None
        )
    # One whole-cell chunk: per-trial (succeeded, required_m) outcomes
    # matching the serial sweep's folded values in trial order.
    serial = plan.run(backend="serial")[0]
    assert [m for _, m in outcomes] == list(serial.values)
