"""Tests for comparator schedules and Batcher's sorting networks."""

import numpy as np
import pytest

from repro.distributed.sorting import (
    ComparatorSchedule,
    apply_schedule,
    bitonic_sort,
    distributed_sort,
    from_rounds,
    is_sorting_network,
    make_sorting_network,
    odd_even_mergesort,
    odd_even_transposition,
)


class TestScheduleValidation:
    def test_valid_schedule(self):
        s = from_rounds(4, [[(0, 1), (2, 3)], [(1, 2)]])
        assert s.depth == 2
        assert s.size == 3

    def test_wire_reuse_in_round_rejected(self):
        with pytest.raises(ValueError):
            from_rounds(3, [[(0, 1), (1, 2)]])

    def test_degenerate_comparator_rejected(self):
        with pytest.raises(ValueError):
            from_rounds(2, [[(1, 1)]])

    def test_out_of_range_wire_rejected(self):
        with pytest.raises(ValueError):
            from_rounds(2, [[(0, 2)]])

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            ComparatorSchedule(n=0, rounds=())

    def test_participation_table(self):
        s = from_rounds(3, [[(2, 0)]])
        table = s.participation()
        assert table[0][2] == (0, True)  # wire 2 takes the min
        assert table[0][0] == (2, False)
        assert 1 not in table[0]


class TestApplySchedule:
    def test_single_comparator(self):
        s = from_rounds(2, [[(0, 1)]])
        assert apply_schedule([5, 3], s) == [3, 5]
        assert apply_schedule([3, 5], s) == [3, 5]

    def test_descending_comparator(self):
        s = from_rounds(2, [[(1, 0)]])  # wire 1 gets min
        assert apply_schedule([3, 5], s) == [5, 3]

    def test_wrong_length_rejected(self):
        s = from_rounds(2, [[(0, 1)]])
        with pytest.raises(ValueError):
            apply_schedule([1, 2, 3], s)


class TestOddEvenMergesort:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6, 7, 8, 9, 12, 13])
    def test_zero_one_principle(self, n):
        assert is_sorting_network(odd_even_mergesort(n))

    @pytest.mark.parametrize("n", [2, 5, 17, 64, 100])
    def test_sorts_random_permutations(self, n):
        gen = np.random.default_rng(n)
        s = odd_even_mergesort(n)
        for _ in range(10):
            keys = list(gen.permutation(n))
            assert apply_schedule(keys, s) == sorted(keys)

    def test_depth_is_polylog(self):
        # Batcher depth = O(log^2 n): for n = 1024 it is 55.
        s = odd_even_mergesort(1024)
        assert s.depth == 55

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            odd_even_mergesort(0)

    def test_n_one_empty(self):
        assert odd_even_mergesort(1).depth == 0

    def test_sorts_duplicates(self):
        s = odd_even_mergesort(6)
        assert apply_schedule([2, 1, 2, 0, 1, 0], s) == [0, 0, 1, 1, 2, 2]


class TestBitonicSort:
    @pytest.mark.parametrize("n", [1, 2, 4, 8, 16])
    def test_zero_one_principle(self, n):
        assert is_sorting_network(bitonic_sort(n))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            bitonic_sort(6)

    @pytest.mark.parametrize("n", [8, 32, 128])
    def test_sorts_random_permutations(self, n):
        gen = np.random.default_rng(n)
        s = bitonic_sort(n)
        for _ in range(10):
            keys = list(gen.permutation(n))
            assert apply_schedule(keys, s) == sorted(keys)

    def test_known_depth(self):
        # Bitonic depth = log(n) (log(n) + 1) / 2.
        assert bitonic_sort(16).depth == 4 * 5 // 2


class TestOddEvenTransposition:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8, 10])
    def test_zero_one_principle(self, n):
        assert is_sorting_network(odd_even_transposition(n))

    def test_depth_is_n(self):
        assert odd_even_transposition(10).depth == 10


class TestMakeSortingNetwork:
    def test_by_name(self):
        assert make_sorting_network("batcher", 10).n == 10
        assert make_sorting_network("bitonic", 8).n == 8
        assert make_sorting_network("transposition", 5).n == 5

    def test_case_insensitive(self):
        assert make_sorting_network("BATCHER", 4).n == 4

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_sorting_network("quicksort", 4)


class TestIsSortingNetwork:
    def test_detects_non_sorting_network(self):
        incomplete = from_rounds(3, [[(0, 1)]])
        assert not is_sorting_network(incomplete)

    def test_exhaustive_limit(self):
        with pytest.raises(ValueError):
            is_sorting_network(odd_even_mergesort(20))


class TestDistributedSort:
    @pytest.mark.parametrize("n", [1, 2, 5, 17, 33])
    def test_matches_reference_executor(self, n):
        gen = np.random.default_rng(n)
        keys = [(float(v), i) for i, v in enumerate(gen.normal(size=n))]
        schedule = odd_even_mergesort(n)
        out, _ = distributed_sort(keys, schedule)
        assert out == sorted(keys)

    def test_metrics_accounting(self):
        schedule = odd_even_mergesort(8)
        keys = [(float(8 - i), i) for i in range(8)]
        _, net = distributed_sort(keys, schedule)
        # 2 messages per comparator (one per participant).
        assert net.metrics.messages == 2 * schedule.size
        assert net.metrics.bits > 0
        assert net.metrics.rounds <= schedule.depth + 2

    def test_wrong_key_count_rejected(self):
        with pytest.raises(ValueError):
            distributed_sort([(1, 0)], odd_even_mergesort(2))

    def test_ties_preserved_consistently(self):
        keys = [(1.0, i) for i in range(6)]
        out, _ = distributed_sort(keys, odd_even_mergesort(6))
        assert out == sorted(keys)
