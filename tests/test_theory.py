"""Tests for the analysis toolbox: bounds sanity + simulation agreement."""

import math

import numpy as np
import pytest

import repro
from repro.theory.concentration import (
    chernoff_lower_tail,
    chernoff_two_sided,
    chernoff_upper_tail,
    gaussian_tail_exact,
    gaussian_tail_lower,
    gaussian_tail_upper,
)
from repro.theory.degrees import (
    degree_interval,
    distinct_degree_interval,
    distinct_to_multi_ratio,
    expected_distinct_degree,
    expected_multi_degree,
)
from repro.theory.neighborhood import (
    gaussian_noise_std,
    neighborhood_moments,
    second_neighborhood_size,
)


class TestChernoff:
    def test_bounds_in_unit_interval(self):
        for eps in (0.1, 0.5, 1.0, 3.0):
            for mean in (1.0, 10.0, 1000.0):
                assert 0 <= chernoff_upper_tail(eps, mean) <= 1
                assert 0 <= chernoff_lower_tail(eps, mean) <= 1

    def test_decreasing_in_mean(self):
        assert chernoff_upper_tail(0.5, 100) < chernoff_upper_tail(0.5, 10)

    def test_decreasing_in_eps(self):
        assert chernoff_upper_tail(1.0, 50) < chernoff_upper_tail(0.1, 50)

    def test_eps_zero_trivial(self):
        assert chernoff_upper_tail(0.0, 100) == 1.0
        assert chernoff_lower_tail(0.0, 100) == 1.0

    def test_upper_tail_actually_bounds_binomial(self):
        # Empirical check: Bin(n, p) upper tail below the Chernoff bound.
        gen = np.random.default_rng(0)
        n_trials, p, eps = 500, 0.3, 0.4
        mean = n_trials * p
        samples = gen.binomial(n_trials, p, size=20_000)
        empirical = np.mean(samples >= (1 + eps) * mean)
        assert empirical <= chernoff_upper_tail(eps, mean) + 0.01

    def test_lower_tail_actually_bounds_binomial(self):
        gen = np.random.default_rng(1)
        n_trials, p, eps = 500, 0.3, 0.4
        mean = n_trials * p
        samples = gen.binomial(n_trials, p, size=20_000)
        empirical = np.mean(samples <= (1 - eps) * mean)
        assert empirical <= chernoff_lower_tail(eps, mean) + 0.01

    def test_two_sided_is_sum(self):
        assert chernoff_two_sided(0.3, 50) == pytest.approx(
            min(1.0, chernoff_upper_tail(0.3, 50) + chernoff_lower_tail(0.3, 50))
        )


class TestGaussianTails:
    @pytest.mark.parametrize("y,lam", [(1.0, 1.0), (2.5, 1.0), (5.0, 2.0), (10.0, 3.0)])
    def test_sandwich(self, y, lam):
        exact = gaussian_tail_exact(y, lam)
        assert gaussian_tail_lower(y, lam) <= exact <= gaussian_tail_upper(y, lam)

    def test_lower_bound_clamped_at_zero(self):
        # For y <= lam the Mill prefactor is negative; must clamp to 0.
        assert gaussian_tail_lower(0.5, 1.0) == 0.0

    def test_upper_bound_tightens_with_y(self):
        assert gaussian_tail_upper(5.0, 1.0) < gaussian_tail_upper(2.0, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            gaussian_tail_upper(-1.0, 1.0)
        with pytest.raises(ValueError):
            gaussian_tail_upper(1.0, 0.0)


class TestDegreeMoments:
    def test_expected_multi_degree_paper_value(self):
        # Delta = m Gamma / n = m / 2 for Gamma = n/2.
        assert expected_multi_degree(1000, 80, 500) == pytest.approx(40.0)

    def test_expected_distinct_degree_limit(self):
        # For Gamma = n/2, E[Delta*] -> (1 - e^{-1/2}) m.
        n, m = 100_000, 200
        expected = (1 - math.exp(-0.5)) * m
        assert expected_distinct_degree(n, m, n // 2) == pytest.approx(
            expected, rel=1e-4
        )

    def test_distinct_below_multi(self):
        assert expected_distinct_degree(1000, 50, 500) < expected_multi_degree(
            1000, 50, 500
        )

    def test_ratio_approaches_two_gamma(self):
        # Lemma 4: Delta*/Delta -> 2(1 - e^{-1/2}) for Gamma = n/2.
        ratio = distinct_to_multi_ratio(1_000_000, 500_000)
        assert ratio == pytest.approx(2 * repro.GAMMA_CONST, rel=1e-4)

    def test_empirical_degrees_match(self):
        gen = np.random.default_rng(5)
        n, m = 2000, 300
        g = repro.sample_pooling_graph(n, m, rng=gen)
        delta = g.multi_degrees()
        delta_star = g.distinct_degrees()
        assert delta.mean() == pytest.approx(
            expected_multi_degree(n, m, g.gamma), rel=0.02
        )
        assert delta_star.mean() == pytest.approx(
            expected_distinct_degree(n, m, g.gamma), rel=0.02
        )

    def test_lemma3_concentration_holds_empirically(self):
        gen = np.random.default_rng(6)
        n, m = 2000, 400
        g = repro.sample_pooling_graph(n, m, rng=gen)
        lo, hi = degree_interval(n, m, g.gamma)
        delta = g.multi_degrees()
        assert delta.min() >= lo
        assert delta.max() <= hi

    def test_corollary5_concentration_holds_empirically(self):
        gen = np.random.default_rng(7)
        n, m = 2000, 400
        g = repro.sample_pooling_graph(n, m, rng=gen)
        lo, hi = distinct_degree_interval(n, m, g.gamma)
        delta_star = g.distinct_degrees()
        assert delta_star.min() >= lo
        assert delta_star.max() <= hi


class TestNeighborhoodMoments:
    def test_second_neighborhood_size(self):
        assert second_neighborhood_size(10, 20, 50) == 10 * 50 - 20

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            neighborhood_moments(
                100, 10, 1, delta=50, delta_star=2, channel=repro.NoiselessChannel()
            )

    def test_noiseless_mean_gap_structure(self):
        n, k, gamma = 1000, 10, 500
        delta, delta_star = 50.0, 40.0
        mom = neighborhood_moments(
            n, k, gamma, delta, delta_star, repro.NoiselessChannel()
        )
        nj = second_neighborhood_size(delta_star, delta, gamma)
        expected_gap = delta - nj / (n - 1)
        assert mom.mean_gap == pytest.approx(expected_gap)

    def test_gaussian_adds_noise_variance(self):
        base = neighborhood_moments(
            1000, 10, 500, 50.0, 40.0, repro.NoiselessChannel()
        )
        noisy = neighborhood_moments(
            1000, 10, 500, 50.0, 40.0, repro.GaussianQueryNoise(2.0)
        )
        assert noisy.var_one == pytest.approx(base.var_one + 4.0 * 40.0)
        assert noisy.mean_one == pytest.approx(base.mean_one)

    def test_unsupported_channel_rejected(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            neighborhood_moments(100, 5, 50, 10.0, 8.0, Weird())

    def test_gaussian_noise_std(self):
        assert gaussian_noise_std(2.0, 25.0) == pytest.approx(10.0)
        assert gaussian_noise_std(2.0, 0.0) == 0.0

    @pytest.mark.parametrize(
        "channel",
        [
            repro.NoiselessChannel(),
            repro.ZChannel(0.2),
            repro.NoisyChannel(0.2, 0.1),
            repro.GaussianQueryNoise(1.5),
        ],
    )
    def test_simulation_agrees_with_lemma8(self, channel):
        """Empirical conditional means of Psi must match Lemma 8 / Cor. 9."""
        gen = np.random.default_rng(8)
        n, k, m = 600, 60, 150
        trials = 60
        psi_one, psi_zero = [], []
        d_one, d_zero, ds_one, ds_zero = [], [], [], []
        for _ in range(trials):
            truth = repro.sample_ground_truth(n, k, gen)
            graph = repro.sample_pooling_graph(n, m, rng=gen)
            meas = repro.measure(graph, truth, channel, gen)
            psi = graph.neighborhood_sums(meas.results)
            ones = truth.sigma == 1
            psi_one.append(psi[ones].mean())
            psi_zero.append(psi[~ones].mean())
            delta = graph.multi_degrees()
            delta_star = graph.distinct_degrees()
            d_one.append(delta[ones].mean())
            d_zero.append(delta[~ones].mean())
            ds_one.append(delta_star[ones].mean())
            ds_zero.append(delta_star[~ones].mean())

        mom_one = neighborhood_moments(
            n, k, graph.gamma, np.mean(d_one), np.mean(ds_one), channel
        )
        mom_zero = neighborhood_moments(
            n, k, graph.gamma, np.mean(d_zero), np.mean(ds_zero), channel
        )
        assert np.mean(psi_one) == pytest.approx(mom_one.mean_one, rel=0.02)
        assert np.mean(psi_zero) == pytest.approx(mom_zero.mean_zero, rel=0.02)

    @pytest.mark.parametrize(
        "channel",
        [
            repro.ZChannel(0.2),
            repro.NoisyChannel(0.2, 0.1),
            repro.GaussianQueryNoise(2.0),
        ],
    )
    def test_degree_centered_variance_agrees_with_lemma8(self, channel):
        """Variance of the degree-centered neighborhood sum.

        The closed form of :func:`neighborhood_moments` conditions on
        the degrees; the raw Psi variance across instances is dominated
        by Delta* fluctuations times the squared mean query result.
        Centering by ``Delta* * E[query result]`` cancels that leading
        term, leaving (approximately) the Lemma 8 variance.
        """
        from repro.core.scores import expected_query_result

        gen = np.random.default_rng(77)
        n, k, m = 500, 50, 120
        trials = 500
        expected_res = expected_query_result(channel, n, k, n // 2)
        centered = []
        deltas, dstars = [], []
        for _ in range(trials):
            truth = repro.sample_ground_truth(n, k, gen)
            graph = repro.sample_pooling_graph(n, m, rng=gen)
            meas = repro.measure(graph, truth, channel, gen)
            psi = graph.neighborhood_sums(meas.results)
            a = int(truth.ones[0])
            dstar = graph.distinct_degrees()[a]
            centered.append(psi[a] - dstar * expected_res)
            deltas.append(graph.multi_degrees()[a])
            dstars.append(dstar)
        mom = neighborhood_moments(
            n, k, n // 2, float(np.mean(deltas)), float(np.mean(dstars)), channel
        )
        empirical_var = float(np.var(centered, ddof=1))
        assert empirical_var == pytest.approx(mom.var_one, rel=0.35)

    @pytest.mark.parametrize(
        "channel",
        [
            repro.ZChannel(0.2),
            repro.NoisyChannel(0.2, 0.1),
        ],
    )
    def test_conditional_noise_variance_exact(self, channel):
        """Given the graph AND the truth, Var(Psi_a) is exactly the sum
        over the agent's distinct queries of the per-query flip
        variance ``E1 p(1-p) + (Gamma - E1) q(1-q)``."""
        gen = np.random.default_rng(88)
        n, k, m = 200, 20, 60
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        agent = int(truth.ones[0])
        member = np.zeros(m, dtype=bool)
        for j in range(m):
            agents, _ = graph.query(j)
            member[j] = agent in agents
        e1 = graph.edges_into_ones(truth.sigma)
        p, q = channel.p, channel.q
        predicted = float(
            np.sum(
                member
                * (e1 * p * (1 - p) + (graph.gamma - e1) * q * (1 - q))
            )
        )
        samples = []
        for _ in range(3000):
            meas = repro.measure(graph, truth, channel, gen)
            samples.append(graph.neighborhood_sums(meas.results)[agent])
        assert np.var(samples, ddof=1) == pytest.approx(predicted, rel=0.12)

    def test_conditional_gaussian_variance_exact(self):
        """Given graph and truth, Var(Psi_a) = lambda^2 * Delta*_a."""
        gen = np.random.default_rng(89)
        lam = 2.0
        n, k, m = 200, 20, 60
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        channel = repro.GaussianQueryNoise(lam)
        agent = int(truth.ones[0])
        predicted = lam**2 * graph.distinct_degrees()[agent]
        samples = []
        for _ in range(3000):
            meas = repro.measure(graph, truth, channel, gen)
            samples.append(graph.neighborhood_sums(meas.results)[agent])
        assert np.var(samples, ddof=1) == pytest.approx(predicted, rel=0.12)
