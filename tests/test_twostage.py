"""Tests for the two-stage (greedy + local correction) extension."""

import numpy as np
import pytest

import repro
from repro.core.twostage import (
    TwoStageConfig,
    channel_corrected_results,
    two_stage_reconstruct,
)


def _measurements(seed, n=300, k=5, m=150, channel=None):
    gen = np.random.default_rng(seed)
    truth = repro.sample_ground_truth(n, k, gen)
    graph = repro.sample_pooling_graph(n, m, rng=gen)
    channel = channel if channel is not None else repro.ZChannel(0.2)
    return repro.measure(graph, truth, channel, gen)


class TestChannelCorrectedResults:
    def test_noiseless_identity(self, rng):
        meas = _measurements(0, channel=repro.NoiselessChannel())
        y = channel_corrected_results(meas.results, meas.graph.gamma, meas.channel)
        assert np.array_equal(y, meas.results)

    def test_noisy_channel_unbiased(self):
        gen = np.random.default_rng(1)
        n, k, m = 300, 30, 60
        truth = repro.sample_ground_truth(n, k, gen)
        graph = repro.sample_pooling_graph(n, m, rng=gen)
        channel = repro.NoisyChannel(0.2, 0.1)
        exact = graph.edges_into_ones(truth.sigma)
        corrected = np.mean(
            [
                channel_corrected_results(
                    repro.measure(graph, truth, channel, gen).results,
                    graph.gamma,
                    channel,
                )
                for _ in range(400)
            ],
            axis=0,
        )
        assert np.allclose(corrected, exact, atol=1.5)

    def test_unsupported_channel(self):
        class Weird:
            pass

        with pytest.raises(TypeError):
            channel_corrected_results(np.zeros(3), 10, Weird())


class TestTwoStageConfig:
    def test_defaults_valid(self):
        TwoStageConfig()

    def test_invalid_rounds(self):
        with pytest.raises(ValueError):
            TwoStageConfig(max_rounds=0)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            TwoStageConfig(step_size=0.0)


class TestTwoStageReconstruct:
    def test_easy_instance_exact(self):
        meas = _measurements(2, m=250)
        result = two_stage_reconstruct(meas)
        assert result.exact
        assert result.meta["algorithm"] == "two-stage"

    def test_estimate_weight_is_k(self):
        meas = _measurements(3, m=40)
        result = two_stage_reconstruct(meas)
        assert result.estimate.sum() == meas.k

    def test_zero_queries_rejected(self, rng):
        truth = repro.sample_ground_truth(20, 2, rng)
        graph = repro.sample_pooling_graph(20, 0, rng=rng)
        meas = repro.measure(graph, truth, rng=rng)
        with pytest.raises(ValueError):
            two_stage_reconstruct(meas)

    def test_never_worse_than_greedy_when_greedy_exact(self):
        # If stage 1 already solves the instance, stage 2 must keep it.
        for seed in range(6):
            meas = _measurements(100 + seed, m=300)
            greedy = repro.greedy_reconstruct(meas)
            if greedy.exact:
                assert two_stage_reconstruct(meas).exact

    def test_beats_greedy_in_transition_window(self):
        """The paper's open question: local correction recovers the
        remaining mistakes near the threshold."""
        greedy_wins, twostage_wins = 0, 0
        for seed in range(12):
            meas = _measurements(
                200 + seed, n=600, k=5, m=120, channel=repro.ZChannel(0.3)
            )
            greedy_wins += repro.greedy_reconstruct(meas).exact
            twostage_wins += two_stage_reconstruct(meas).exact
        assert twostage_wins > greedy_wins

    def test_rounds_bounded_and_recorded(self):
        meas = _measurements(4, m=200)
        config = TwoStageConfig(max_rounds=3, stop_when_stable=False)
        result = two_stage_reconstruct(meas, config=config)
        assert result.meta["rounds"] == 3
        assert len(result.meta["support_changes"]) == 3

    def test_early_stop_on_stability(self):
        meas = _measurements(5, m=300)
        result = two_stage_reconstruct(meas)
        # Easy instance: support stabilizes well before the budget.
        assert result.meta["rounds"] <= TwoStageConfig().max_rounds
        assert result.meta["support_changes"][-1] == 0

    def test_custom_step_size(self):
        meas = _measurements(6, m=200)
        result = two_stage_reconstruct(
            meas, config=TwoStageConfig(step_size=0.001)
        )
        assert result.meta["step_size"] == 0.001

    def test_gaussian_channel(self):
        meas = _measurements(7, m=250, channel=repro.GaussianQueryNoise(1.0))
        result = two_stage_reconstruct(meas)
        assert result.estimate.sum() == meas.k

    def test_gnc_channel(self):
        meas = _measurements(8, m=250, channel=repro.NoisyChannel(0.1, 0.01))
        result = two_stage_reconstruct(meas)
        assert result.estimate.sum() == meas.k

    def test_determinism(self):
        a = two_stage_reconstruct(_measurements(9))
        b = two_stage_reconstruct(_measurements(9))
        assert np.array_equal(a.estimate, b.estimate)

    def test_stage1_exact_flag(self):
        meas = _measurements(10, m=300)
        result = two_stage_reconstruct(meas)
        assert isinstance(result.meta["stage1_exact"], bool)

    def test_available_via_harness(self):
        from repro.experiments.runner import success_rate_curve

        curve = success_rate_curve(
            200, 4, repro.ZChannel(0.2), [120], algorithm="twostage",
            trials=5, seed=0,
        )
        assert curve.algorithm == "twostage"
        assert 0.0 <= curve.success_rates[0] <= 1.0
