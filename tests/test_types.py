"""Unit tests for result types and estimate evaluation."""

import numpy as np
import pytest

from repro.core.types import (
    ReconstructionResult,
    RequiredQueriesResult,
    evaluate_estimate,
)


class TestEvaluateEstimate:
    def test_exact_match(self):
        truth = np.array([1, 0, 1, 0])
        out = evaluate_estimate(truth.copy(), truth)
        assert out["exact"]
        assert out["overlap"] == 1.0
        assert out["hamming_errors"] == 0

    def test_single_swap(self):
        truth = np.array([1, 0, 1, 0])
        est = np.array([1, 1, 0, 0])
        out = evaluate_estimate(est, truth)
        assert not out["exact"]
        assert out["overlap"] == 0.5
        assert out["hamming_errors"] == 2

    def test_overlap_counts_only_ones(self):
        truth = np.array([1, 1, 0, 0, 0])
        est = np.array([1, 0, 1, 0, 0])
        out = evaluate_estimate(est, truth)
        assert out["overlap"] == 0.5

    def test_zero_k_overlap_defined(self):
        truth = np.zeros(4, dtype=int)
        out = evaluate_estimate(truth.copy(), truth)
        assert out["overlap"] == 1.0

    def test_separation_from_scores(self):
        truth = np.array([1, 0])
        scores = np.array([5.0, 1.0])
        out = evaluate_estimate(truth.copy(), truth, scores)
        assert out["separated"]
        out2 = evaluate_estimate(truth.copy(), truth, scores[::-1].copy())
        assert not out2["separated"]

    def test_degenerate_truth_is_separated(self):
        truth = np.ones(3, dtype=int)
        out = evaluate_estimate(truth.copy(), truth, np.zeros(3))
        assert out["separated"]

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_estimate(np.zeros(3), np.zeros(4))
        with pytest.raises(ValueError):
            evaluate_estimate(np.zeros(3), np.zeros(3), np.zeros(2))


class TestReconstructionResult:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            ReconstructionResult(estimate=np.zeros(3), scores=np.zeros(4))

    def test_meta_defaults_empty(self):
        r = ReconstructionResult(estimate=np.zeros(2), scores=np.zeros(2))
        assert r.meta == {}
        assert r.exact is None


class TestRequiredQueriesResult:
    def test_fields(self):
        r = RequiredQueriesResult(required_m=42, n=100, k=5, succeeded=True)
        assert r.required_m == 42
        assert r.succeeded
        assert r.checks == 0
