"""Unit tests for repro.utils (rng plumbing and validation)."""

import numpy as np
import pytest

from repro.utils.rng import (
    generator_state_fingerprint,
    interleave_seeds,
    normalize_rng,
    spawn_rngs,
    spawn_seeds,
)
from repro.utils.validation import (
    check_fraction,
    check_in_range,
    check_non_negative,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_probability,
)


class TestNormalizeRng:
    def test_from_none(self):
        assert isinstance(normalize_rng(None), np.random.Generator)

    def test_from_int_deterministic(self):
        a = normalize_rng(42).integers(0, 1000, 5)
        b = normalize_rng(42).integers(0, 1000, 5)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert normalize_rng(gen) is gen

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(7)
        assert isinstance(normalize_rng(seq), np.random.Generator)

    def test_rejects_junk(self):
        with pytest.raises(TypeError):
            normalize_rng("seed")


class TestSpawning:
    def test_spawn_count(self):
        assert len(spawn_seeds(0, 5)) == 5
        assert len(spawn_rngs(0, 3)) == 3

    def test_spawn_zero(self):
        assert spawn_seeds(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)

    def test_children_are_independent_streams(self):
        a, b = spawn_rngs(123, 2)
        xa = a.integers(0, 10**9, 10)
        xb = b.integers(0, 10**9, 10)
        assert not np.array_equal(xa, xb)

    def test_deterministic_from_root(self):
        a1, a2 = spawn_rngs(55, 2)
        b1, b2 = spawn_rngs(55, 2)
        assert np.array_equal(a1.integers(0, 100, 5), b1.integers(0, 100, 5))
        assert np.array_equal(a2.integers(0, 100, 5), b2.integers(0, 100, 5))

    def test_spawn_from_generator(self):
        gen = np.random.default_rng(9)
        children = spawn_rngs(gen, 2)
        assert len(children) == 2

    def test_interleave_labels(self):
        seeds = interleave_seeds(3, ["truth", "graph", "noise"])
        assert set(seeds) == {"truth", "graph", "noise"}

    def test_fingerprint_changes_after_draw(self):
        gen = np.random.default_rng(1)
        before = generator_state_fingerprint(gen)
        gen.integers(0, 10)
        assert generator_state_fingerprint(gen) != before


class TestValidation:
    def test_positive_int(self):
        assert check_positive_int(5, "x") == 5
        with pytest.raises(ValueError):
            check_positive_int(0, "x")
        with pytest.raises(TypeError):
            check_positive_int(1.5, "x")
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_positive_int_numpy(self):
        assert check_positive_int(np.int64(3), "x") == 3

    def test_non_negative_int(self):
        assert check_non_negative_int(0, "x") == 0

    def test_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(0.999, "p") == 0.999
        with pytest.raises(ValueError):
            check_probability(1.0, "p")
        assert check_probability(1.0, "p", allow_one=True) == 1.0
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")

    def test_fraction(self):
        assert check_fraction(0.5, "z") == 0.5
        for bad in (0.0, 1.0):
            with pytest.raises(ValueError):
                check_fraction(bad, "z")

    def test_positive(self):
        assert check_positive(0.1, "x") == 0.1
        with pytest.raises(ValueError):
            check_positive(0.0, "x")

    def test_non_negative(self):
        assert check_non_negative(0.0, "x") == 0.0
        with pytest.raises(ValueError):
            check_non_negative(-1e-9, "x")

    def test_in_range(self):
        assert check_in_range(5, "x", low=0, high=10) == 5
        with pytest.raises(ValueError):
            check_in_range(11, "x", low=0, high=10)
        with pytest.raises(ValueError):
            check_in_range(-1, "x", low=0)

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            check_non_negative(float("nan"), "x")

    def test_error_message_names_parameter(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive(-1, "my_param")
